//! Declarative experiment plans: typed sweep axes, a knob overlay, and
//! cartesian expansion into deduplicating [`SimJob`] sets.
//!
//! The paper's headline results are *sensitivity studies* — sweeps over
//! L1 capacity (Fig. 12), Poise's hyperparameters (Figs. 11/16) and
//! machine size — so the experiment API is organised around describing a
//! sweep instead of hand-enumerating its points:
//!
//! * [`Knob`] — every settable experiment parameter (SM count, L1/L2
//!   geometry, cycle budgets, profiling grids, any [`PoiseParams`]
//!   field), with a stable CLI name, a value grammar, and an `apply`
//!   onto [`Setup`];
//! * [`KnobOverlay`] — an ordered list of `knob = value` assignments,
//!   parsed **once** at CLI entry from `--set k=v` arguments plus the
//!   deprecated `POISE_*` environment aliases, and applied explicitly to
//!   a base [`Setup`]. `Setup::default()` itself never reads the
//!   environment, so two jobs built in the same process can never
//!   disagree because a variable changed mid-run;
//! * [`Axis`] — one swept knob with the values it takes
//!   (`--sweep k=a,b,c`);
//! * [`ExperimentPlan`] — a base setup plus axes whose cartesian product
//!   expands ([`ExperimentPlan::expand`]) into per-point
//!   [`SweepPoint`]s and the union of every point's jobs. Jobs whose
//!   canonical spec is identical across points (an offline profile a
//!   `run_cycles` sweep does not disturb, the one base-machine model an
//!   SM sweep deploys everywhere) are *shared*: the engine executes them
//!   once and the expansion reports how many ([`PlanExpansion::shared`]).
//!
//! Jobs unique to one sweep point get the point's display tag (e.g.
//! `sms=16`) so `run_all` progress lines are distinguishable within a
//! sweep; shared jobs stay untagged.

use crate::experiment::Setup;
use crate::jobs::SimJob;
use crate::profiler::GridSpec;
use gpu_sim::SetIndexing;
use poise_ml::ScoringWeights;

use std::collections::HashMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Knobs and their values.
// ---------------------------------------------------------------------------

/// Every experiment knob a plan can set or sweep. Each knob has a stable
/// CLI name (`Knob::name`), a typed value grammar (`Knob::parse_value`)
/// and an application onto [`Setup`] (`Knob::apply`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Simulated SM count; rescales the shared L2 banks / DRAM
    /// partitions proportionally, like [`gpu_sim::GpuConfig::scaled`].
    Sms,
    /// L1 capacity as a multiple of the baseline 16 KB geometry
    /// (Fig. 12 sweeps 1/2/4). Absolute like every other knob: a later
    /// assignment replaces an earlier one, it does not compound.
    L1Scale,
    /// L1 set count (absolute).
    L1Sets,
    /// L1 associativity.
    L1Ways,
    /// L1 set-index function: `linear` or `hashed`.
    L1Indexing,
    /// Shared L2 bank count.
    L2Banks,
    /// Cycle budget of evaluation runs.
    RunCycles,
    /// Kernels per evaluation benchmark (deterministic subsample).
    KernelsCap,
    /// Kernels per training benchmark.
    TrainCap,
    /// Profiling warmup cycles.
    ProfileWarmup,
    /// Profiling measurement cycles.
    ProfileMeasure,
    /// Grid profiled for the static schemes: `full:N`, `coarse:N` or
    /// `diagonal:N`.
    EvalGrid,
    /// Grid profiled for training samples (same grammar).
    TrainGrid,
    /// Poise inference epoch length (Table IV `Tperiod`).
    TPeriod,
    /// Poise warmup window (`Twarmup`).
    TWarmup,
    /// Poise feature-sampling window (`Tfeature`).
    TFeature,
    /// Poise search-sampling window (`Tsearch`).
    TSearch,
    /// Poise compute-intensity cut-off (`Imax`).
    IMax,
    /// Local-search strides as a pair `eN:ep` (Fig. 11).
    Strides,
    /// Eq. 12 scoring weights as `w0:w1:w2`.
    Scoring,
    /// Per-job watchdog deadline in seconds (fractional allowed). An
    /// engine robustness knob: an attempt exceeding it is cancelled and
    /// classified `timed out`. Never part of cache identity — no job
    /// spec renders it.
    JobDeadline,
    /// Fabric worker processes for `run_all` (0 = in-process). Engine
    /// knob: never part of cache identity.
    Workers,
    /// Threads stepping SMs inside a single simulation run: `1` keeps
    /// the default single-threaded loop, `n > 1` selects
    /// [`gpu_sim::StepMode::ParallelSm`] with a pool of `n` (bounded by
    /// the process thread budget at run time). Engine knob: results are
    /// bit-identical at every thread count, so it is never part of
    /// cache identity.
    SimThreads,
    /// Lease heartbeat TTL in seconds before a claim counts as dead and
    /// becomes stealable. Engine knob.
    LeaseTtl,
    /// Straggler threshold in seconds: a lease older than this is
    /// stolen even with a live heartbeat. Engine knob.
    StealAfter,
    /// Periodic snapshot barrier interval in cycles (0 disables):
    /// factorable runs publish prefix blobs at every multiple, so an
    /// interrupted run resumes from its last checkpoint. Engine knob:
    /// results are bit-identical with or without checkpoints, so it is
    /// never part of cache identity.
    SnapshotEvery,
}

/// A typed knob value. Produced by [`Knob::parse_value`] (CLI / env) or
/// the typed [`Axis`] constructors; consumed by [`Knob::apply`].
#[derive(Debug, Clone, PartialEq)]
pub enum KnobValue {
    /// A count (SM count, sets, ways, caps, strides).
    Count(usize),
    /// A cycle budget.
    Cycles(u64),
    /// A real-valued parameter.
    Real(f64),
    /// A set-index function.
    Indexing(SetIndexing),
    /// A profiling grid, keeping the literal it was written as.
    Grid(String, GridSpec),
    /// A `(stride_n, stride_p)` pair.
    Pair(usize, usize),
    /// Scoring weights.
    Weights([f64; 3]),
}

impl fmt::Display for KnobValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobValue::Count(v) => write!(f, "{v}"),
            KnobValue::Cycles(v) => write!(f, "{v}"),
            KnobValue::Real(v) => write!(f, "{v}"),
            KnobValue::Indexing(SetIndexing::Linear) => write!(f, "linear"),
            KnobValue::Indexing(SetIndexing::Hashed) => write!(f, "hashed"),
            KnobValue::Grid(name, _) => write!(f, "{name}"),
            KnobValue::Pair(n, p) => write!(f, "{n}:{p}"),
            KnobValue::Weights([a, b, c]) => write!(f, "{a}:{b}:{c}"),
        }
    }
}

/// All knobs with their CLI names, in documentation order.
pub const KNOBS: [(Knob, &str); 26] = [
    (Knob::Sms, "sms"),
    (Knob::L1Scale, "l1_scale"),
    (Knob::L1Sets, "l1_sets"),
    (Knob::L1Ways, "l1_ways"),
    (Knob::L1Indexing, "l1_indexing"),
    (Knob::L2Banks, "l2_banks"),
    (Knob::RunCycles, "run_cycles"),
    (Knob::KernelsCap, "kernels_cap"),
    (Knob::TrainCap, "train_cap"),
    (Knob::ProfileWarmup, "profile_warmup"),
    (Knob::ProfileMeasure, "profile_measure"),
    (Knob::EvalGrid, "eval_grid"),
    (Knob::TrainGrid, "train_grid"),
    (Knob::TPeriod, "t_period"),
    (Knob::TWarmup, "t_warmup"),
    (Knob::TFeature, "t_feature"),
    (Knob::TSearch, "t_search"),
    (Knob::IMax, "i_max"),
    (Knob::Strides, "strides"),
    (Knob::Scoring, "scoring"),
    (Knob::JobDeadline, "job_deadline"),
    (Knob::Workers, "workers"),
    (Knob::SimThreads, "sim_threads"),
    (Knob::LeaseTtl, "lease_ttl"),
    (Knob::StealAfter, "steal_after"),
    (Knob::SnapshotEvery, "snapshot_every"),
];

/// The deprecated environment aliases still feeding the overlay.
pub const ENV_ALIASES: [(&str, Knob); 4] = [
    ("POISE_SMS", Knob::Sms),
    ("POISE_KERNELS_CAP", Knob::KernelsCap),
    ("POISE_TRAIN_CAP", Knob::TrainCap),
    ("POISE_RUN_CYCLES", Knob::RunCycles),
];

fn knob_list() -> String {
    KNOBS.iter().map(|(_, n)| *n).collect::<Vec<_>>().join(", ")
}

impl Knob {
    /// The stable CLI name (`--set <name>=<value>`).
    pub fn name(self) -> &'static str {
        KNOBS
            .iter()
            .find(|(k, _)| *k == self)
            .map(|(_, n)| *n)
            .expect("every knob is listed in KNOBS")
    }

    /// Look a knob up by CLI name.
    pub fn from_name(name: &str) -> Option<Knob> {
        KNOBS.iter().find(|(_, n)| *n == name).map(|(k, _)| *k)
    }

    /// Parse one value of this knob's grammar. Errors are loud and name
    /// the offending knob and literal.
    pub fn parse_value(self, s: &str) -> Result<KnobValue, String> {
        let s = s.trim();
        let bad = |what: &str| format!("invalid value `{s}` for knob `{}`: {what}", self.name());
        let count = |min: usize| -> Result<KnobValue, String> {
            let v: usize = s.parse().map_err(|_| bad("expected an integer"))?;
            if v < min {
                return Err(bad(&format!("must be >= {min}")));
            }
            Ok(KnobValue::Count(v))
        };
        match self {
            Knob::Sms
            | Knob::L1Scale
            | Knob::L1Sets
            | Knob::L1Ways
            | Knob::L2Banks
            | Knob::SimThreads => count(1),
            Knob::KernelsCap | Knob::TrainCap | Knob::Workers => count(0),
            Knob::RunCycles
            | Knob::ProfileWarmup
            | Knob::ProfileMeasure
            | Knob::TPeriod
            | Knob::TWarmup
            | Knob::TFeature
            | Knob::TSearch
            | Knob::SnapshotEvery => {
                let v: u64 = s.parse().map_err(|_| bad("expected a cycle count"))?;
                Ok(KnobValue::Cycles(v))
            }
            Knob::IMax => {
                let v: f64 = s.parse().map_err(|_| bad("expected a number"))?;
                Ok(KnobValue::Real(v))
            }
            Knob::JobDeadline | Knob::LeaseTtl | Knob::StealAfter => {
                let v: f64 = s.parse().map_err(|_| bad("expected seconds"))?;
                if !(v > 0.0 && v.is_finite()) {
                    return Err(bad("must be a positive number of seconds"));
                }
                Ok(KnobValue::Real(v))
            }
            Knob::L1Indexing => match s {
                "linear" => Ok(KnobValue::Indexing(SetIndexing::Linear)),
                "hashed" => Ok(KnobValue::Indexing(SetIndexing::Hashed)),
                _ => Err(bad("expected `linear` or `hashed`")),
            },
            Knob::EvalGrid | Knob::TrainGrid => {
                let (kind, n) = s
                    .split_once(':')
                    .ok_or_else(|| bad("expected `full:N`, `coarse:N` or `diagonal:N`"))?;
                let n: usize = n.parse().map_err(|_| bad("grid size must be an integer"))?;
                if n == 0 {
                    return Err(bad("grid size must be >= 1"));
                }
                let grid = match kind {
                    "full" => GridSpec::full(n),
                    "coarse" => GridSpec::coarse(n),
                    "diagonal" => GridSpec::diagonal(n),
                    _ => return Err(bad("grid kind must be full, coarse or diagonal")),
                };
                Ok(KnobValue::Grid(s.to_string(), grid))
            }
            Knob::Strides => {
                let (n, p) = s
                    .split_once(':')
                    .ok_or_else(|| bad("expected `eN:ep`, e.g. `2:4`"))?;
                let n = n.parse().map_err(|_| bad("stride must be an integer"))?;
                let p = p.parse().map_err(|_| bad("stride must be an integer"))?;
                Ok(KnobValue::Pair(n, p))
            }
            Knob::Scoring => {
                let parts: Vec<&str> = s.split(':').collect();
                if parts.len() != 3 {
                    return Err(bad("expected `w0:w1:w2`"));
                }
                let mut w = [0.0; 3];
                for (i, p) in parts.iter().enumerate() {
                    w[i] = p.parse().map_err(|_| bad("weights must be numbers"))?;
                }
                Ok(KnobValue::Weights(w))
            }
        }
    }

    /// Apply one value of this knob to a [`Setup`]. Values always come
    /// from [`Knob::parse_value`] or the typed [`Axis`] constructors, so
    /// a kind mismatch is a caller bug and panics.
    pub fn apply(self, setup: &mut Setup, value: &KnobValue) {
        let kind_bug = || -> ! {
            panic!(
                "knob `{}` applied with mismatched value {value:?}",
                self.name()
            )
        };
        let as_count = |v: &KnobValue| -> usize {
            match v {
                KnobValue::Count(c) => *c,
                _ => kind_bug(),
            }
        };
        let as_cycles = |v: &KnobValue| -> u64 {
            match v {
                KnobValue::Cycles(c) => *c,
                _ => kind_bug(),
            }
        };
        match self {
            // In place (not `GpuConfig::scaled`, which rebuilds from the
            // baseline), so earlier overlay entries such as an L1
            // geometry override survive a later `sms=` assignment.
            Knob::Sms => setup.cfg.rescale_sms(as_count(value)),
            Knob::L1Scale => {
                // k x the *baseline* set count, not the running value:
                // every knob follows last-wins assignment semantics, so
                // `--set l1_scale=4 --set l1_scale=2` is 2x and a sweep
                // axis over a pre-scaled base does not compound.
                setup.cfg.l1.sets = gpu_sim::GpuConfig::baseline().l1.sets * as_count(value).max(1);
            }
            Knob::L1Sets => setup.cfg.l1.sets = as_count(value),
            Knob::L1Ways => setup.cfg.l1.ways = as_count(value),
            Knob::L1Indexing => match value {
                KnobValue::Indexing(ix) => setup.cfg.l1.indexing = *ix,
                _ => kind_bug(),
            },
            Knob::L2Banks => setup.cfg.l2.banks = as_count(value),
            Knob::RunCycles => setup.run_cycles = as_cycles(value),
            Knob::KernelsCap => setup.kernels_cap = as_count(value),
            Knob::TrainCap => setup.train_cap_per_benchmark = as_count(value),
            Knob::ProfileWarmup => setup.profile_window.warmup = as_cycles(value),
            Knob::ProfileMeasure => setup.profile_window.measure = as_cycles(value),
            Knob::EvalGrid => match value {
                KnobValue::Grid(_, g) => setup.eval_grid = g.clone(),
                _ => kind_bug(),
            },
            Knob::TrainGrid => match value {
                KnobValue::Grid(_, g) => setup.train_grid = g.clone(),
                _ => kind_bug(),
            },
            Knob::TPeriod => setup.params.t_period = as_cycles(value),
            Knob::TWarmup => setup.params.t_warmup = as_cycles(value),
            Knob::TFeature => setup.params.t_feature = as_cycles(value),
            Knob::TSearch => setup.params.t_search = as_cycles(value),
            Knob::IMax => match value {
                KnobValue::Real(v) => setup.params.i_max = *v,
                _ => kind_bug(),
            },
            Knob::Strides => match value {
                KnobValue::Pair(n, p) => {
                    setup.params.stride_n = *n;
                    setup.params.stride_p = *p;
                }
                _ => kind_bug(),
            },
            Knob::Scoring => match value {
                KnobValue::Weights(w) => setup.params.scoring = ScoringWeights(*w),
                _ => kind_bug(),
            },
            Knob::JobDeadline => match value {
                KnobValue::Real(v) => setup.job_deadline = Some(*v),
                _ => kind_bug(),
            },
            Knob::Workers => match value {
                KnobValue::Count(v) => setup.workers = *v,
                _ => kind_bug(),
            },
            Knob::SimThreads => {
                let n = as_count(value);
                setup.cfg.sim_threads = n;
                // `1` restores the build's default loop (PerSm, or
                // Reference under the `reference-step` feature) so a
                // sweep axis over thread counts exercises both paths.
                setup.cfg.step_mode = if n > 1 {
                    gpu_sim::StepMode::ParallelSm
                } else {
                    gpu_sim::StepMode::default()
                };
            }
            Knob::LeaseTtl => match value {
                KnobValue::Real(v) => setup.lease_ttl = *v,
                _ => kind_bug(),
            },
            Knob::StealAfter => match value {
                KnobValue::Real(v) => setup.steal_after = Some(*v),
                _ => kind_bug(),
            },
            Knob::SnapshotEvery => setup.snapshot_every = as_cycles(value),
        }
    }
}

// ---------------------------------------------------------------------------
// The knob overlay.
// ---------------------------------------------------------------------------

/// An ordered list of `knob = value` assignments applied to a base
/// [`Setup`]. Parsed exactly once at CLI entry — from `--set` arguments
/// and the deprecated `POISE_*` environment aliases — and then applied
/// explicitly, so the setup a process runs with is a pure function of
/// its invocation.
#[derive(Debug, Clone, Default)]
pub struct KnobOverlay {
    sets: Vec<(Knob, KnobValue)>,
}

impl KnobOverlay {
    /// Parse `--set`-style assignments (`"knob=value"`). Unknown knobs
    /// and malformed values are loud errors, never silent defaults.
    pub fn parse(assignments: &[String]) -> Result<Self, String> {
        let mut overlay = KnobOverlay::default();
        for a in assignments {
            let (name, value) = a
                .split_once('=')
                .ok_or_else(|| format!("malformed --set `{a}`: expected knob=value"))?;
            let knob = Knob::from_name(name.trim()).ok_or_else(|| {
                format!(
                    "unknown knob `{}`; valid knobs: {}",
                    name.trim(),
                    knob_list()
                )
            })?;
            overlay.sets.push((knob, knob.parse_value(value)?));
        }
        Ok(overlay)
    }

    /// Read the deprecated `POISE_*` aliases into an overlay, returning
    /// one deprecation warning per alias found. Malformed values are
    /// errors (they used to fall back to defaults silently).
    pub fn from_env() -> Result<(Self, Vec<String>), String> {
        let mut overlay = KnobOverlay::default();
        let mut warnings = Vec::new();
        for (var, knob) in ENV_ALIASES {
            if let Ok(raw) = std::env::var(var) {
                let value = knob.parse_value(&raw).map_err(|e| format!("{var}: {e}"))?;
                warnings.push(format!(
                    "{var} is deprecated; use `--set {}={value}`",
                    knob.name()
                ));
                overlay.sets.push((knob, value));
            }
        }
        Ok((overlay, warnings))
    }

    /// Append one assignment.
    pub fn push(&mut self, knob: Knob, value: KnobValue) {
        self.sets.push((knob, value));
    }

    /// This overlay followed by `later` (later assignments win, because
    /// application is in order — CLI `--set`s override env aliases).
    pub fn merged(mut self, later: KnobOverlay) -> KnobOverlay {
        self.sets.extend(later.sets);
        self
    }

    /// Whether any assignment is present.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Apply every assignment, in order, to `setup`.
    pub fn apply(&self, setup: &mut Setup) {
        for (knob, value) in &self.sets {
            knob.apply(setup, value);
        }
    }

    /// A copy of `base` with the overlay applied.
    pub fn applied_to(&self, base: &Setup) -> Setup {
        let mut s = base.clone();
        self.apply(&mut s);
        s
    }

    /// One-line `k=v k=v` summary for logs.
    pub fn summary(&self) -> String {
        self.sets
            .iter()
            .map(|(k, v)| format!("{}={v}", k.name()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

// ---------------------------------------------------------------------------
// Axes and plans.
// ---------------------------------------------------------------------------

/// One sweep axis: a knob and the values it takes, in order.
#[derive(Debug, Clone)]
pub struct Axis {
    /// The swept knob.
    pub knob: Knob,
    /// The values, in sweep order. Never empty.
    pub values: Vec<KnobValue>,
}

impl Axis {
    /// A validated axis. Errors on an empty value list.
    pub fn new(knob: Knob, values: Vec<KnobValue>) -> Result<Axis, String> {
        if values.is_empty() {
            return Err(format!("axis `{}` has no values", knob.name()));
        }
        Ok(Axis { knob, values })
    }

    /// Parse a `--sweep`-style axis: `knob=v1,v2,...`.
    pub fn parse(spec: &str) -> Result<Axis, String> {
        let (name, values) = spec
            .split_once('=')
            .ok_or_else(|| format!("malformed --sweep `{spec}`: expected knob=v1,v2,..."))?;
        let knob = Knob::from_name(name.trim()).ok_or_else(|| {
            format!(
                "unknown knob `{}`; valid knobs: {}",
                name.trim(),
                knob_list()
            )
        })?;
        let values = values
            .split(',')
            .map(|v| knob.parse_value(v))
            .collect::<Result<Vec<_>, _>>()?;
        Axis::new(knob, values)
    }

    /// An SM-count axis.
    pub fn sms(values: impl IntoIterator<Item = usize>) -> Axis {
        Axis::new(
            Knob::Sms,
            values.into_iter().map(KnobValue::Count).collect(),
        )
        .expect("non-empty sms axis")
    }

    /// An L1 capacity-scale axis (Fig. 12).
    pub fn l1_scale(values: impl IntoIterator<Item = usize>) -> Axis {
        Axis::new(
            Knob::L1Scale,
            values.into_iter().map(KnobValue::Count).collect(),
        )
        .expect("non-empty l1_scale axis")
    }

    /// An L1 set-indexing axis (a single value pins the function for
    /// every sweep point).
    pub fn l1_indexing(values: impl IntoIterator<Item = SetIndexing>) -> Axis {
        Axis::new(
            Knob::L1Indexing,
            values.into_iter().map(KnobValue::Indexing).collect(),
        )
        .expect("non-empty l1_indexing axis")
    }

    /// A run-cycle-budget axis.
    pub fn run_cycles(values: impl IntoIterator<Item = u64>) -> Axis {
        Axis::new(
            Knob::RunCycles,
            values.into_iter().map(KnobValue::Cycles).collect(),
        )
        .expect("non-empty run_cycles axis")
    }

    /// A Poise epoch-length axis.
    pub fn t_period(values: impl IntoIterator<Item = u64>) -> Axis {
        Axis::new(
            Knob::TPeriod,
            values.into_iter().map(KnobValue::Cycles).collect(),
        )
        .expect("non-empty t_period axis")
    }

    /// A search-stride axis of `(eN, ep)` pairs (Fig. 11).
    pub fn strides(values: impl IntoIterator<Item = (usize, usize)>) -> Axis {
        Axis::new(
            Knob::Strides,
            values
                .into_iter()
                .map(|(n, p)| KnobValue::Pair(n, p))
                .collect(),
        )
        .expect("non-empty strides axis")
    }
}

/// One point of an expanded sweep: the fully-applied [`Setup`] plus the
/// coordinates that produced it.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The setup of this point (base + every axis value applied).
    pub setup: Setup,
    /// `(knob, value)` per axis, in axis order.
    pub coords: Vec<(Knob, KnobValue)>,
    /// Display tag joining the *varied* axes only (`sms=16`, or
    /// `sms=16 t_period=50000`); empty for a single-point plan.
    pub tag: String,
}

/// A declarative experiment: a base [`Setup`] and the axes to sweep.
/// The cartesian product of the axes' values gives the sweep points.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    /// The setup every point starts from.
    pub base: Setup,
    /// The sweep axes (empty = the single base point).
    pub axes: Vec<Axis>,
}

/// The result of expanding a plan over a figure's job function.
#[derive(Debug)]
pub struct PlanExpansion {
    /// The sweep points, in cartesian order (last axis fastest).
    pub points: Vec<SweepPoint>,
    /// Every point's jobs, concatenated (point-unique `Run` jobs carry
    /// the point's tag). The engine deduplicates by canonical spec.
    pub jobs: Vec<SimJob>,
    /// Jobs declared across all points, before deduplication.
    pub declared: usize,
    /// Unique job specs over the dependency closure of all points.
    pub unique: usize,
    /// Unique specs (including dependencies such as offline profiles
    /// and model fits) reached from **two or more** sweep points — the
    /// work the sweep driver executes once instead of once per point.
    pub shared: usize,
}

impl ExperimentPlan {
    /// The trivial single-point plan.
    pub fn single(base: Setup) -> Self {
        ExperimentPlan {
            base,
            axes: Vec::new(),
        }
    }

    /// A plan over `axes`.
    pub fn new(base: Setup, axes: Vec<Axis>) -> Self {
        ExperimentPlan { base, axes }
    }

    /// The cartesian product of the axes, each point's setup built by
    /// applying its coordinates to the base in axis order.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = vec![SweepPoint {
            setup: self.base.clone(),
            coords: Vec::new(),
            tag: String::new(),
        }];
        for axis in &self.axes {
            let varied = axis.values.len() > 1;
            let mut next = Vec::with_capacity(points.len() * axis.values.len());
            for point in &points {
                for value in &axis.values {
                    let mut setup = point.setup.clone();
                    axis.knob.apply(&mut setup, value);
                    let mut coords = point.coords.clone();
                    coords.push((axis.knob, value.clone()));
                    let mut tag = point.tag.clone();
                    if varied {
                        if !tag.is_empty() {
                            tag.push(' ');
                        }
                        tag.push_str(&format!("{}={value}", axis.knob.name()));
                    }
                    next.push(SweepPoint { setup, coords, tag });
                }
            }
            points = next;
        }
        points
    }

    /// Expand the plan over a figure's job function: call `jobs` once
    /// per point, tag point-unique `Run` jobs with the point's display
    /// tag, and count the specs shared between points (over the full
    /// dependency closure, so a model fit a sweep deploys at every
    /// point is counted even though figures declare only the runs).
    pub fn expand(&self, jobs: impl Fn(&Setup) -> Vec<SimJob>) -> PlanExpansion {
        let points = self.points();
        let mut per_point: Vec<Vec<SimJob>> = Vec::with_capacity(points.len());
        // spec -> set of point indices reaching it (declared or as a dep).
        let mut reached_by: HashMap<String, Vec<usize>> = HashMap::new();
        for (pi, point) in points.iter().enumerate() {
            let declared = jobs(&point.setup);
            let mut worklist: Vec<SimJob> = declared.clone();
            let mut seen_here: std::collections::HashSet<String> = Default::default();
            while let Some(job) = worklist.pop() {
                let spec = job.spec_text();
                if !seen_here.insert(spec.clone()) {
                    continue;
                }
                worklist.extend(job.deps());
                let entry = reached_by.entry(spec).or_default();
                if entry.last() != Some(&pi) {
                    entry.push(pi);
                }
            }
            per_point.push(declared);
        }

        let declared = per_point.iter().map(Vec::len).sum();
        let unique = reached_by.len();
        let shared = reached_by.values().filter(|pts| pts.len() >= 2).count();

        let mut out = Vec::with_capacity(declared);
        for (pi, jobs) in per_point.into_iter().enumerate() {
            let tag = &points[pi].tag;
            for mut job in jobs {
                if !tag.is_empty() {
                    if let SimJob::Run(spec) = &mut job {
                        // Tag only jobs unique to this point; a job shared
                        // across points would otherwise wear the first
                        // declaring point's tag, which is misleading.
                        if reached_by
                            .get(&job_spec_cached(spec))
                            .is_some_and(|pts| pts.len() == 1)
                        {
                            spec.tag = Some(tag.clone());
                        }
                    }
                }
                out.push(job);
            }
        }

        PlanExpansion {
            points,
            jobs: out,
            declared,
            unique,
            shared,
        }
    }
}

/// Spec text of a run spec (helper: `SimJob::spec_text` needs the
/// enum wrapper, but tagging works on the inner spec).
fn job_spec_cached(spec: &crate::jobs::KernelRunSpec) -> String {
    SimJob::Run(spec.clone()).spec_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scheme;
    use crate::jobs::KernelRunSpec;
    use workloads::{AccessMix, KernelSpec, Workload};

    fn kernel(seed: u64) -> Workload {
        KernelSpec::steady(format!("pk{seed}"), AccessMix::memory_sensitive(), seed).into()
    }

    #[test]
    fn cartesian_point_counts_and_tags() {
        let plan = ExperimentPlan::new(
            Setup::for_tests(),
            vec![
                Axis::sms([1, 2]),
                Axis::run_cycles([10_000, 20_000, 30_000]),
            ],
        );
        let points = plan.points();
        assert_eq!(points.len(), 6);
        // Last axis fastest; tags join both varied axes.
        assert_eq!(points[0].tag, "sms=1 run_cycles=10000");
        assert_eq!(points[1].tag, "sms=1 run_cycles=20000");
        assert_eq!(points[3].tag, "sms=2 run_cycles=10000");
        assert_eq!(points[0].setup.cfg.sms, 1);
        assert_eq!(points[3].setup.cfg.sms, 2);
        assert_eq!(points[5].setup.run_cycles, 30_000);
        // Single-value axes pin but do not enter the tag.
        let pinned = ExperimentPlan::new(
            Setup::for_tests(),
            vec![
                Axis::l1_indexing([SetIndexing::Linear]),
                Axis::l1_scale([1, 2]),
            ],
        );
        let pts = pinned.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].tag, "l1_scale=1");
        assert!(pts
            .iter()
            .all(|p| p.setup.cfg.l1.indexing == SetIndexing::Linear));
    }

    #[test]
    fn single_point_plan_has_one_untagged_point() {
        let plan = ExperimentPlan::single(Setup::for_tests());
        let points = plan.points();
        assert_eq!(points.len(), 1);
        assert!(points[0].tag.is_empty());
        assert!(points[0].coords.is_empty());
    }

    #[test]
    fn expansion_shares_jobs_the_axis_does_not_disturb() {
        // A run_cycles sweep leaves the offline profile (an SWL
        // dependency) untouched: it must be counted shared, and the SWL
        // runs themselves must be distinct and tagged per point.
        let plan =
            ExperimentPlan::new(Setup::for_tests(), vec![Axis::run_cycles([10_000, 20_000])]);
        let exp = plan.expand(|setup| {
            vec![SimJob::Run(KernelRunSpec::new(
                &kernel(1),
                Scheme::Swl,
                setup,
                None,
            ))]
        });
        assert_eq!(exp.points.len(), 2);
        assert_eq!(exp.declared, 2);
        // Closure: 2 distinct runs + 1 shared profile.
        assert_eq!(exp.unique, 3);
        assert_eq!(exp.shared, 1, "the profile is reached from both points");
        // Both declared runs are point-unique, so both carry tags.
        let tags: Vec<_> = exp
            .jobs
            .iter()
            .map(|j| match j {
                SimJob::Run(r) => r.tag.clone().unwrap_or_default(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(tags, vec!["run_cycles=10000", "run_cycles=20000"]);
        assert!(exp.jobs[0].label().contains("run_cycles=10000"));
    }

    #[test]
    fn jobs_shared_between_points_stay_untagged() {
        // Sweeping t_period does not reach a GTO run's spec at all, so
        // the same GTO job is declared by both points: shared, untagged.
        let plan = ExperimentPlan::new(Setup::for_tests(), vec![Axis::t_period([5_000, 9_000])]);
        let exp = plan.expand(|setup| {
            vec![SimJob::Run(KernelRunSpec::new(
                &kernel(2),
                Scheme::Gto,
                setup,
                None,
            ))]
        });
        assert_eq!(exp.declared, 2);
        assert_eq!(exp.unique, 1);
        assert_eq!(exp.shared, 1);
        for j in &exp.jobs {
            let SimJob::Run(r) = j else { unreachable!() };
            assert_eq!(r.tag, None, "shared jobs must not wear one point's tag");
        }
    }

    #[test]
    fn overlay_parses_and_applies_in_order() {
        let overlay = KnobOverlay::parse(&[
            "sms=4".into(),
            "l1_scale=2".into(),
            "run_cycles=123".into(),
            "strides=1:3".into(),
            "eval_grid=diagonal:6".into(),
            "l1_indexing=linear".into(),
            "scoring=1:0.5:0.125".into(),
        ])
        .expect("valid overlay");
        let s = overlay.applied_to(&Setup::for_tests());
        assert_eq!(s.cfg.sms, 4);
        assert_eq!(s.cfg.l1.sets, 64, "2x the baseline 32 sets");
        assert_eq!(s.run_cycles, 123);
        assert_eq!((s.params.stride_n, s.params.stride_p), (1, 3));
        assert_eq!(s.eval_grid, GridSpec::diagonal(6));
        assert_eq!(s.cfg.l1.indexing, SetIndexing::Linear);
        assert_eq!(s.params.scoring.0, [1.0, 0.5, 0.125]);
        assert!(overlay.summary().contains("sms=4"));
        // Later assignments win — including l1_scale, which is anchored
        // to the baseline geometry precisely so it cannot compound.
        let o2 =
            overlay.merged(KnobOverlay::parse(&["sms=2".into(), "l1_scale=2".into()]).unwrap());
        let s2 = o2.applied_to(&Setup::for_tests());
        assert_eq!(s2.cfg.sms, 2);
        assert_eq!(
            s2.cfg.l1.sets, 64,
            "last l1_scale wins, no 2x2x compounding"
        );
    }

    #[test]
    fn sms_knob_matches_gpu_config_scaled() {
        use gpu_sim::GpuConfig;
        for sms in [1, 2, 4, 8, 16, 32] {
            let mut s = Setup::for_tests();
            s.cfg = GpuConfig::scaled(8);
            Knob::Sms.apply(&mut s, &KnobValue::Count(sms));
            assert_eq!(s.cfg, GpuConfig::scaled(sms), "sms={sms}");
        }
    }

    #[test]
    fn overlay_errors_are_loud() {
        for (bad, needle) in [
            ("bogus=1", "unknown knob `bogus`"),
            ("sms", "expected knob=value"),
            ("sms=zero", "invalid value `zero` for knob `sms`"),
            ("sms=0", "must be >= 1"),
            ("l1_indexing=diag", "expected `linear` or `hashed`"),
            ("eval_grid=full", "expected `full:N`"),
            ("eval_grid=cube:4", "grid kind must be"),
            ("strides=4", "expected `eN:ep`"),
            ("scoring=1:2", "expected `w0:w1:w2`"),
        ] {
            let err = KnobOverlay::parse(&[bad.to_string()]).unwrap_err();
            assert!(err.contains(needle), "`{bad}` -> {err}");
        }
        assert!(Axis::parse("sms=").is_err());
        assert!(Axis::parse("nope=1,2").unwrap_err().contains("valid knobs"));
        let axis = Axis::parse("sms=1,2,4").unwrap();
        assert_eq!(axis.values.len(), 3);
    }

    /// Serialises the one test in this binary that mutates the process
    /// environment (set_var races concurrent env reads on glibc); any
    /// future env-touching test must take the same lock.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn job_deadline_knob_parses_and_applies() {
        assert_eq!(Knob::from_name("job_deadline"), Some(Knob::JobDeadline));
        let v = Knob::JobDeadline.parse_value("2.5").unwrap();
        let mut s = Setup::for_tests();
        assert_eq!(s.job_deadline, None, "unbounded by default");
        Knob::JobDeadline.apply(&mut s, &v);
        assert_eq!(s.job_deadline, Some(2.5));
        assert!(Knob::JobDeadline.parse_value("0").is_err());
        assert!(Knob::JobDeadline.parse_value("-1").is_err());
        assert!(Knob::JobDeadline.parse_value("inf").is_err());
    }

    #[test]
    fn sim_threads_knob_parses_and_applies() {
        assert_eq!(Knob::from_name("sim_threads"), Some(Knob::SimThreads));
        let mut s = Setup::for_tests();
        assert_eq!(s.cfg.sim_threads, 1, "single-threaded by default");

        let v = Knob::SimThreads.parse_value("4").unwrap();
        Knob::SimThreads.apply(&mut s, &v);
        assert_eq!(s.cfg.sim_threads, 4);
        assert_eq!(s.cfg.step_mode, gpu_sim::StepMode::ParallelSm);

        // `1` restores the build's default step loop.
        let v = Knob::SimThreads.parse_value("1").unwrap();
        Knob::SimThreads.apply(&mut s, &v);
        assert_eq!(s.cfg.sim_threads, 1);
        assert_eq!(s.cfg.step_mode, gpu_sim::StepMode::default());

        assert!(Knob::SimThreads.parse_value("0").is_err());
        assert!(Knob::SimThreads.parse_value("two").is_err());

        // Engine knob: the rendered job spec must not change with it,
        // so cached results are shared across thread counts.
        let base = Setup::for_tests();
        let mut threaded = Setup::for_tests();
        Knob::SimThreads.apply(&mut threaded, &KnobValue::Count(8));
        assert_eq!(
            crate::jobs::spec_render::gpu_config(&base.cfg),
            crate::jobs::spec_render::gpu_config(&threaded.cfg),
        );
    }

    #[test]
    fn fabric_knobs_parse_and_apply() {
        let mut s = Setup::for_tests();
        assert_eq!(s.workers, 0, "in-process by default");
        assert_eq!(s.lease_ttl, 2.0);
        assert_eq!(s.steal_after, None, "heartbeat-staleness only");

        let v = Knob::Workers.parse_value("3").unwrap();
        Knob::Workers.apply(&mut s, &v);
        assert_eq!(s.workers, 3);
        assert!(Knob::Workers.parse_value("-1").is_err());

        let v = Knob::LeaseTtl.parse_value("0.5").unwrap();
        Knob::LeaseTtl.apply(&mut s, &v);
        assert_eq!(s.lease_ttl, 0.5);
        assert!(Knob::LeaseTtl.parse_value("0").is_err());

        let v = Knob::StealAfter.parse_value("30").unwrap();
        Knob::StealAfter.apply(&mut s, &v);
        assert_eq!(s.steal_after, Some(30.0));
        assert!(Knob::StealAfter.parse_value("nan").is_err());

        // Engine knobs never reach a job spec, so they cannot perturb
        // cache identity.
        assert_eq!(Knob::from_name("workers"), Some(Knob::Workers));
        assert_eq!(Knob::from_name("lease_ttl"), Some(Knob::LeaseTtl));
        assert_eq!(Knob::from_name("steal_after"), Some(Knob::StealAfter));
    }

    #[test]
    fn env_aliases_feed_the_overlay_with_warnings() {
        let _guard = ENV_LOCK.lock().expect("env lock");
        std::env::set_var("POISE_SMS", "3");
        std::env::set_var("POISE_RUN_CYCLES", "5555");
        let (overlay, warnings) = KnobOverlay::from_env().expect("valid env");
        std::env::remove_var("POISE_SMS");
        std::env::remove_var("POISE_RUN_CYCLES");
        let s = overlay.applied_to(&Setup::for_tests());
        assert_eq!(s.cfg.sms, 3);
        assert_eq!(s.run_cycles, 5555);
        assert!(warnings.iter().any(|w| w.contains("POISE_SMS")));
        assert!(warnings.iter().any(|w| w.contains("deprecated")));
    }
}
