//! Shared experiment runners for the figure/table regenerators.
//!
//! A [`Setup`] bundles the machine configuration, Poise parameters,
//! profiling windows and effort caps; [`run_benchmark`] executes one
//! benchmark under one [`Scheme`] and aggregates per-kernel results the
//! way the paper reports them (benchmark IPC = total instructions / total
//! cycles; cross-benchmark means are harmonic for speedups and arithmetic
//! for rates).
//!
//! Kernel runs are independent (each owns its `Gpu`), so [`run_benchmark`]
//! fans its kernels across the host's cores and [`run_schemes`] fans the
//! whole scheme × kernel product, profiling each kernel offline exactly
//! once for all profile-driven schemes.

use crate::hie::PoiseController;
use crate::parallel::parallel_map;
use crate::params::PoiseParams;
use crate::policies::{
    static_best_from_grid, swl_tuple_from_grid, ApcmController, PcalSwlController,
    RandomRestartController,
};
use crate::profiler::{profile_grid, GridSpec, ProfileWindow};
use gpu_sim::{
    Controller, Counters, EnergyBreakdown, FixedTuple, Gpu, GpuConfig, KernelSource, WarpTuple,
};
use poise_ml::{SpeedupGrid, TrainedModel};
use workloads::{Benchmark, Workload};

/// The warp-scheduling schemes of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Greedy-then-oldest baseline at maximum warps.
    Gto,
    /// Static warp limiting (best diagonal tuple from an offline profile).
    Swl,
    /// Dynamic PCAL seeded by the SWL profile point.
    PcalSwl,
    /// Poise: prediction + local search.
    Poise,
    /// Best tuple from a full offline profile, per kernel.
    StaticBest,
    /// Random-restart stochastic search (averaged over seeds by caller).
    RandomRestart,
    /// APCM-style per-PC cache bypassing.
    Apcm,
}

impl Scheme {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Gto => "GTO",
            Scheme::Swl => "SWL",
            Scheme::PcalSwl => "PCAL-SWL",
            Scheme::Poise => "Poise",
            Scheme::StaticBest => "Static-Best",
            Scheme::RandomRestart => "Random-restart",
            Scheme::Apcm => "APCM",
        }
    }

    /// All schemes compared in Figs. 7–9.
    pub fn main_comparison() -> [Scheme; 5] {
        [
            Scheme::Gto,
            Scheme::Swl,
            Scheme::PcalSwl,
            Scheme::Poise,
            Scheme::StaticBest,
        ]
    }
}

/// Experiment-wide configuration: machine, Poise parameters, effort caps.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Simulated machine.
    pub cfg: GpuConfig,
    /// Poise runtime parameters.
    pub params: PoiseParams,
    /// Profiling window for offline profiles and training.
    pub profile_window: ProfileWindow,
    /// Grid used for offline profiling of evaluation kernels
    /// (SWL / PCAL start / Static-Best).
    pub eval_grid: GridSpec,
    /// Grid used for training-set profiling.
    pub train_grid: GridSpec,
    /// Cycles each kernel runs under each scheme in evaluation runs.
    pub run_cycles: u64,
    /// Max kernels per evaluation benchmark (deterministic subsample).
    pub kernels_cap: usize,
    /// Max kernels per training benchmark.
    pub train_cap_per_benchmark: usize,
    /// Seeds for random-restart averaging.
    pub rr_seeds: Vec<u64>,
    /// Per-job watchdog deadline in wall seconds (`job_deadline` knob):
    /// a job attempt exceeding it is cooperatively cancelled and marked
    /// timed out. `None` = unbounded. An engine robustness knob — never
    /// part of any job's cache identity (no spec renders it).
    pub job_deadline: Option<f64>,
    /// Fabric worker processes (`workers` knob): 0 = plain in-process
    /// run, N ≥ 1 = coordinator + N spawned workers sharing the cache
    /// via leases. Engine-only — never part of cache identity.
    pub workers: usize,
    /// Lease heartbeat TTL in seconds (`lease_ttl` knob): a lease whose
    /// heartbeat is older than this is considered owned by a dead
    /// worker and may be stolen. Engine-only.
    pub lease_ttl: f64,
    /// Straggler threshold in seconds (`steal_after` knob): a lease
    /// older than this is stolen even with a live heartbeat. `None` =
    /// heartbeat-staleness only. Engine-only.
    pub steal_after: Option<f64>,
    /// Periodic snapshot barrier interval in cycles (`snapshot_every`
    /// knob): `> 0` threads checkpoint barriers at every multiple into
    /// each factorable run's prefix chain, so interrupted runs (and
    /// stolen fabric leases) resume from the last published blob rather
    /// than cycle 0. `0` disables. Pure execution strategy — results are
    /// bit-identical either way, so never part of cache identity.
    pub snapshot_every: u64,
}

impl Default for Setup {
    fn default() -> Self {
        // Deliberately a *pure* constant: effort knobs reach a Setup only
        // through an explicitly applied `crate::plan::KnobOverlay`, parsed
        // once at CLI entry (`--set` / `--sweep`, with the legacy
        // `POISE_*` variables as deprecated aliases). Reading the
        // environment here let two jobs built in one process silently
        // disagree when a variable changed mid-run.
        Setup {
            cfg: GpuConfig::scaled(8),
            params: PoiseParams::default(),
            profile_window: ProfileWindow::default(),
            eval_grid: GridSpec::coarse(24),
            train_grid: GridSpec::coarse(24),
            run_cycles: 400_000,
            kernels_cap: 3,
            train_cap_per_benchmark: 8,
            rr_seeds: vec![11, 23, 47],
            job_deadline: None,
            workers: 0,
            lease_ttl: 2.0,
            steal_after: None,
            snapshot_every: 0,
        }
    }
}

impl Setup {
    /// A very small setup for unit tests: 1-SM machine, short windows.
    pub fn for_tests() -> Self {
        Setup {
            cfg: GpuConfig::scaled(1),
            params: PoiseParams::scaled_down(10),
            profile_window: ProfileWindow {
                warmup: 500,
                measure: 2_000,
            },
            eval_grid: GridSpec::coarse(24),
            train_grid: GridSpec::diagonal(12),
            run_cycles: 40_000,
            kernels_cap: 2,
            train_cap_per_benchmark: 4,
            rr_seeds: vec![1],
            job_deadline: None,
            workers: 0,
            lease_ttl: 2.0,
            steal_after: None,
            snapshot_every: 0,
        }
    }
}

/// Result of running one kernel under one scheme.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name.
    pub kernel: String,
    /// Total counters over the run.
    pub counters: Counters,
    /// Energy over the run.
    pub energy: EnergyBreakdown,
    /// Poise epoch logs, if the scheme was Poise.
    pub epoch_logs: Vec<crate::hie::EpochLog>,
}

/// Aggregated result of one benchmark under one scheme.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub bench: String,
    /// Scheme executed.
    pub scheme: Scheme,
    /// Aggregate IPC (Σ instructions / Σ cycles over kernels).
    pub ipc: f64,
    /// Aggregate absolute L1 hit rate.
    pub l1_hit_rate: f64,
    /// Aggregate average memory latency.
    pub aml: f64,
    /// Total energy.
    pub energy: f64,
    /// Per-kernel runs.
    pub kernels: Vec<KernelRun>,
}

/// Offline per-kernel profile artefacts shared by SWL / PCAL / Static-Best.
#[derive(Debug)]
pub struct OfflineProfile {
    /// The speedup surface.
    pub grid: SpeedupGrid,
    /// Best diagonal tuple (SWL's choice, PCAL's starting point).
    pub swl: WarpTuple,
    /// Best overall tuple (Static-Best's choice).
    pub best: WarpTuple,
}

/// The two tuples a run extracts from an [`OfflineProfile`] — the only
/// part of a profile the profile-driven schemes actually consume (which
/// is why the job-cache key of such a run digests just these, see
/// [`crate::jobs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileTuples {
    /// Best diagonal tuple (SWL's choice, PCAL's starting point).
    pub swl: WarpTuple,
    /// Best overall tuple (Static-Best's choice).
    pub best: WarpTuple,
}

/// Profile one workload offline (used by the static schemes).
pub fn offline_profile(spec: &Workload, setup: &Setup) -> OfflineProfile {
    let max_warps = spec
        .warps_per_scheduler()
        .min(setup.cfg.max_warps_per_scheduler);
    let grid = profile_grid(spec, &setup.cfg, &setup.eval_grid, setup.profile_window);
    OfflineProfile {
        swl: swl_tuple_from_grid(&grid, max_warps),
        best: static_best_from_grid(&grid, max_warps),
        grid,
    }
}

/// Run one kernel for `setup.run_cycles` under `scheme`.
///
/// `profile` must be provided for the profile-driven schemes (SWL,
/// PCAL-SWL, Static-Best); `model` for Poise.
pub fn run_kernel(
    spec: &Workload,
    scheme: Scheme,
    model: &TrainedModel,
    profile: Option<&OfflineProfile>,
    setup: &Setup,
) -> KernelRun {
    run_kernel_configured(
        spec,
        scheme,
        Some(model),
        profile.map(|p| ProfileTuples {
            swl: p.swl,
            best: p.best,
        }),
        &setup.cfg,
        &setup.params,
        &setup.rr_seeds,
        setup.run_cycles,
    )
}

/// Run one kernel under `scheme` with every input explicit — the
/// execution core shared by [`run_kernel`] and the job engine
/// ([`crate::jobs`]). The explicit argument list is deliberately the
/// dependency surface of a run: everything a scheme's result can depend
/// on is a parameter here and a cache-key field there.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_configured(
    spec: &Workload,
    scheme: Scheme,
    model: Option<&TrainedModel>,
    tuples: Option<ProfileTuples>,
    base_cfg: &GpuConfig,
    params: &PoiseParams,
    rr_seeds: &[u64],
    run_cycles: u64,
) -> KernelRun {
    let mut cfg = base_cfg.clone();
    if scheme == Scheme::Apcm {
        cfg.track_pc_stats = true;
    }
    let mut gpu = Gpu::new(cfg, spec);
    let mut epoch_logs = Vec::new();

    let result = match scheme {
        Scheme::Gto => gpu.run(&mut FixedTuple::max(), run_cycles),
        Scheme::Swl => {
            let t = tuples.expect("SWL needs an offline profile").swl;
            gpu.run(&mut FixedTuple::new(t), run_cycles)
        }
        Scheme::StaticBest => {
            let t = tuples.expect("Static-Best needs an offline profile").best;
            gpu.run(&mut FixedTuple::new(t), run_cycles)
        }
        Scheme::PcalSwl => {
            let start = tuples.expect("PCAL-SWL needs an offline profile").swl;
            let mut ctrl = PcalSwlController::new(start);
            gpu.run(&mut ctrl, run_cycles)
        }
        Scheme::Poise => {
            let model = model.expect("Poise needs a trained model");
            let mut ctrl = PoiseController::new(model.clone(), *params);
            let r = gpu.run(&mut ctrl, run_cycles);
            epoch_logs = ctrl.log.clone();
            r
        }
        Scheme::RandomRestart => {
            // Average over seeds: run each seed for the full budget and
            // merge counters (equal-cycle weighting).
            let mut merged: Option<gpu_sim::SimResult> = None;
            for (i, &seed) in rr_seeds.iter().enumerate() {
                let mut g = if i == 0 {
                    std::mem::replace(&mut gpu, Gpu::new(base_cfg.clone(), spec))
                } else {
                    Gpu::new(base_cfg.clone(), spec)
                };
                let mut ctrl = RandomRestartController::new(seed, params.t_period);
                let r = g.run(&mut ctrl, run_cycles);
                merged = Some(match merged {
                    None => r,
                    Some(mut acc) => {
                        acc.counters = merge_counters(&acc.counters, &r.counters);
                        acc.cycles += r.cycles;
                        acc
                    }
                });
            }
            merged.expect("at least one seed")
        }
        Scheme::Apcm => {
            let mut ctrl = ApcmController::new(params.t_period);
            gpu.run(&mut ctrl, run_cycles)
        }
    };

    KernelRun {
        kernel: spec.name().to_string(),
        counters: result.counters,
        energy: result.energy,
        epoch_logs,
    }
}

/// Version header of the serialized prefix blob (see [`PrefixBlob`]).
/// Bump on any encoding change — blobs are durable cache entries shared
/// between fleet workers, like `SimJob::spec_text`.
pub const PREFIX_HEADER: &str = "poise-prefix v1";

/// A serialized simulation prefix: the full machine image plus the
/// controller's policy state at a barrier cycle. This is the unit of
/// prefix-shared execution — any run (on any worker) whose declared
/// inputs match can restore the blob and simulate only its suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixBlob {
    /// Barrier cycle the blob was taken at.
    pub cycles: u64,
    /// `Controller::save_state` token stream (empty for stateless
    /// controllers such as the fixed-tuple schemes).
    pub ctrl: String,
    /// `Gpu::snapshot` text.
    pub gpu: String,
}

impl PrefixBlob {
    /// Render the durable on-disk form.
    pub fn to_text(&self) -> String {
        let mut out = format!("{PREFIX_HEADER}\ncycles {}\nctrl", self.cycles);
        if !self.ctrl.is_empty() {
            out.push(' ');
            out.push_str(&self.ctrl);
        }
        out.push('\n');
        out.push_str(&self.gpu);
        out
    }

    /// Parse the durable form; `None` on any structural damage. The gpu
    /// text is *not* validated here — restoring does that (and the cache
    /// fsck path runs `gpu_sim::snapshot::validate` separately).
    pub fn parse(text: &str) -> Option<PrefixBlob> {
        let rest = text.strip_prefix(PREFIX_HEADER)?.strip_prefix('\n')?;
        let (cycles_line, rest) = rest.split_once('\n')?;
        let cycles = cycles_line.strip_prefix("cycles ")?.parse().ok()?;
        let (ctrl_line, gpu) = rest.split_once('\n')?;
        let ctrl = ctrl_line.strip_prefix("ctrl")?.trim_start().to_string();
        if gpu.is_empty() {
            return None;
        }
        Some(PrefixBlob {
            cycles,
            ctrl,
            gpu: gpu.to_string(),
        })
    }
}

/// Snapshot transport for segmented runs, implemented by the job engine
/// over its result cache. `load` returning `None` (miss, quarantined
/// corruption, version drift) makes the runner fall back to simulating
/// that span from its deepest usable ancestor — a damaged blob costs
/// re-simulation, never correctness.
pub trait PrefixStore {
    /// Barrier cycles (ascending) this run may fork from or publish to.
    fn boundaries(&self) -> &[u64];
    /// Fetch the blob text at a boundary.
    fn load(&self, cycles: u64) -> Option<String>;
    /// Publish the blob text produced at a boundary.
    fn store(&self, cycles: u64, blob: &str);
}

/// The concrete controller of a segmented run. `run_kernel_configured`
/// can keep its controllers anonymous on the stack; the segmented runner
/// must rebuild *the same* controller type twice (once to try loading
/// serialized state into, once as the cold fallback), so the scheme →
/// controller mapping is reified here. Random-restart is deliberately
/// absent: its result is an average over per-seed reruns of the same
/// span, which has no shareable prefix (the factoring step never emits
/// one).
#[derive(Debug)]
enum Ctl {
    Fixed(FixedTuple),
    Pcal(PcalSwlController),
    Poise(Box<PoiseController>),
    Apcm(ApcmController),
}

impl Ctl {
    fn build(
        scheme: Scheme,
        model: Option<&TrainedModel>,
        tuples: Option<ProfileTuples>,
        params: &PoiseParams,
    ) -> Ctl {
        match scheme {
            Scheme::Gto => Ctl::Fixed(FixedTuple::max()),
            Scheme::Swl => Ctl::Fixed(FixedTuple::new(tuples.expect("SWL needs a profile").swl)),
            Scheme::StaticBest => Ctl::Fixed(FixedTuple::new(
                tuples.expect("Static-Best needs a profile").best,
            )),
            Scheme::PcalSwl => Ctl::Pcal(PcalSwlController::new(
                tuples.expect("PCAL-SWL needs a profile").swl,
            )),
            Scheme::Poise => Ctl::Poise(Box::new(PoiseController::new(
                model.expect("Poise needs a trained model").clone(),
                *params,
            ))),
            Scheme::Apcm => Ctl::Apcm(ApcmController::new(params.t_period)),
            Scheme::RandomRestart => {
                unreachable!("random-restart runs are never prefix-factored")
            }
        }
    }

    fn as_dyn(&mut self) -> &mut dyn Controller {
        match self {
            Ctl::Fixed(c) => c,
            Ctl::Pcal(c) => c,
            Ctl::Poise(c) => c.as_mut(),
            Ctl::Apcm(c) => c,
        }
    }

    fn save_state(&self) -> String {
        match self {
            Ctl::Fixed(c) => c.save_state(),
            Ctl::Pcal(c) => c.save_state(),
            Ctl::Poise(c) => c.save_state(),
            Ctl::Apcm(c) => c.save_state(),
        }
    }

    fn load_state(&mut self, state: &str) -> bool {
        match self {
            Ctl::Fixed(c) => c.load_state(state),
            Ctl::Pcal(c) => c.load_state(state),
            Ctl::Poise(c) => c.load_state(state),
            Ctl::Apcm(c) => c.load_state(state),
        }
    }

    fn into_epoch_logs(self) -> Vec<crate::hie::EpochLog> {
        match self {
            Ctl::Poise(c) => c.log,
            _ => Vec::new(),
        }
    }
}

/// Core of prefix-shared execution: fork from the deepest usable
/// snapshot at or below `run_cycles`, then march through the remaining
/// boundaries publishing a blob at each, and finish the suffix.
///
/// Bit-identity with a cold `run(run_cycles)` is the contract proven by
/// the `snapshot_oracle` differential suite: `run(j)` + snapshot +
/// restore-into-fresh-machine + `resume(k − j)` composes to the same
/// counters, cycle, completion status, steering trajectory and
/// controller state for every shipped policy, kernel class and step
/// mode — including re-entry chains and forks at a drained machine.
#[allow(clippy::too_many_arguments)]
fn run_segments(
    spec: &Workload,
    scheme: Scheme,
    model: Option<&TrainedModel>,
    tuples: Option<ProfileTuples>,
    base_cfg: &GpuConfig,
    params: &PoiseParams,
    run_cycles: u64,
    io: &dyn PrefixStore,
) -> (gpu_sim::SimResult, Ctl, Gpu) {
    let mut cfg = base_cfg.clone();
    if scheme == Scheme::Apcm {
        cfg.track_pc_stats = true;
    }
    let mut ctl = Ctl::build(scheme, model, tuples, params);
    let mut at = 0u64;
    let mut gpu = None;
    for &b in io.boundaries().iter().rev() {
        if b > run_cycles {
            continue;
        }
        // Any defect — missing blob, version drift, snapshot damage,
        // controller-state damage — skips to the next-deepest boundary.
        let Some(text) = io.load(b) else { continue };
        let Some(blob) = PrefixBlob::parse(&text) else {
            continue;
        };
        if blob.cycles != b {
            continue;
        }
        let Ok(g) = Gpu::restore(cfg.clone(), spec, &blob.gpu) else {
            continue;
        };
        let mut c = Ctl::build(scheme, model, tuples, params);
        if !c.load_state(&blob.ctrl) {
            continue;
        }
        gpu = Some(g);
        ctl = c;
        at = b;
        break;
    }
    let mut started = gpu.is_some();
    let mut gpu = gpu.unwrap_or_else(|| Gpu::new(cfg, spec));
    loop {
        let next = io
            .boundaries()
            .iter()
            .copied()
            .find(|&b| b > at && b < run_cycles)
            .unwrap_or(run_cycles);
        // `resume` skips `on_kernel_start` (the restored controller state
        // already reflects it); a fork at exactly `run_cycles` resumes a
        // zero-cycle span, which just settles the result.
        let res = if started {
            gpu.resume(ctl.as_dyn(), next - at)
        } else {
            started = true;
            gpu.run(ctl.as_dyn(), next)
        };
        at = next;
        if at >= run_cycles {
            return (res, ctl, gpu);
        }
        let blob = PrefixBlob {
            cycles: at,
            ctrl: ctl.save_state(),
            gpu: gpu.snapshot(),
        };
        io.store(at, &blob.to_text());
    }
}

/// [`run_kernel_configured`] for a prefix-factored run: same result, but
/// forked from the deepest usable snapshot in `io` and publishing blobs
/// at the boundaries it passes. Only called for schemes with a single
/// deterministic machine (never random-restart).
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_segmented(
    spec: &Workload,
    scheme: Scheme,
    model: Option<&TrainedModel>,
    tuples: Option<ProfileTuples>,
    base_cfg: &GpuConfig,
    params: &PoiseParams,
    run_cycles: u64,
    io: &dyn PrefixStore,
) -> KernelRun {
    let (result, ctl, _gpu) = run_segments(
        spec, scheme, model, tuples, base_cfg, params, run_cycles, io,
    );
    KernelRun {
        kernel: spec.name().to_string(),
        counters: result.counters,
        energy: result.energy,
        epoch_logs: ctl.into_epoch_logs(),
    }
}

/// Execute a `Prefix` job: run (or fork-and-extend) to `run_cycles` and
/// return the blob at that barrier — the job's cacheable output.
#[allow(clippy::too_many_arguments)]
pub fn run_prefix_blob(
    spec: &Workload,
    scheme: Scheme,
    model: Option<&TrainedModel>,
    tuples: Option<ProfileTuples>,
    base_cfg: &GpuConfig,
    params: &PoiseParams,
    run_cycles: u64,
    io: &dyn PrefixStore,
) -> String {
    let (_result, ctl, gpu) = run_segments(
        spec, scheme, model, tuples, base_cfg, params, run_cycles, io,
    );
    PrefixBlob {
        cycles: run_cycles,
        ctrl: ctl.save_state(),
        gpu: gpu.snapshot(),
    }
    .to_text()
}

fn merge_counters(a: &Counters, b: &Counters) -> Counters {
    // Sum the raw events of two runs (used for seed averaging: rates and
    // IPC derived from summed counters are cycle-weighted means).
    let mut out = *a;
    macro_rules! add {
        ($($f:ident),*) => { $(out.$f += b.$f;)* };
    }
    add!(
        cycles,
        instructions,
        loads,
        stores,
        l1_accesses,
        l1_hits,
        l1_intra_hits,
        l1_inter_hits,
        l1_hits_polluting,
        l1_accesses_polluting,
        l1_hits_non_polluting,
        l1_accesses_non_polluting,
        l1_misses_completed,
        miss_latency_sum,
        l1_rejects,
        mshr_allocations,
        mshr_merges,
        l2_accesses,
        l2_hits,
        dram_accesses,
        busy_scheduler_cycles,
        stall_scheduler_cycles,
        in_gap_sum,
        in_gap_count,
        reuse_distance_sum,
        reuse_distance_count
    );
    out
}

/// Whether a scheme consumes an [`OfflineProfile`].
fn needs_profile(scheme: Scheme) -> bool {
    matches!(scheme, Scheme::Swl | Scheme::PcalSwl | Scheme::StaticBest)
}

/// Run a whole benchmark (capped kernels) under one scheme, fanning the
/// independent kernel runs across the host's cores.
pub fn run_benchmark(
    bench: &Benchmark,
    scheme: Scheme,
    model: &TrainedModel,
    setup: &Setup,
) -> BenchResult {
    let capped = bench.capped(setup.kernels_cap);
    let kernels = parallel_map(&capped.kernels, |spec| {
        let profile = needs_profile(scheme).then(|| offline_profile(spec, setup));
        run_kernel(spec, scheme, model, profile.as_ref(), setup)
    });
    aggregate(bench.name.clone(), scheme, kernels)
}

/// Run one benchmark under several schemes at once, fanning the whole
/// scheme × kernel product across the host's cores.
///
/// Offline profiles are computed once per kernel (in parallel) and shared
/// by every profile-driven scheme, so adding SWL / PCAL-SWL / Static-Best
/// to a comparison costs no extra profiling. Results come back in
/// `schemes` order.
pub fn run_schemes(
    bench: &Benchmark,
    schemes: &[Scheme],
    model: &TrainedModel,
    setup: &Setup,
) -> Vec<BenchResult> {
    let capped = bench.capped(setup.kernels_cap);
    let profiles: Option<Vec<OfflineProfile>> = schemes
        .iter()
        .any(|&s| needs_profile(s))
        .then(|| parallel_map(&capped.kernels, |spec| offline_profile(spec, setup)));
    let pairs: Vec<(Scheme, usize)> = schemes
        .iter()
        .flat_map(|&s| (0..capped.kernels.len()).map(move |i| (s, i)))
        .collect();
    let runs = parallel_map(&pairs, |&(scheme, i)| {
        let profile =
            needs_profile(scheme).then(|| &profiles.as_ref().expect("profiles computed")[i]);
        run_kernel(&capped.kernels[i], scheme, model, profile, setup)
    });
    schemes
        .iter()
        .enumerate()
        .map(|(si, &scheme)| {
            let lo = si * capped.kernels.len();
            let kernels = runs[lo..lo + capped.kernels.len()].to_vec();
            aggregate(bench.name.clone(), scheme, kernels)
        })
        .collect()
}

/// Aggregate per-kernel runs into a [`BenchResult`] the way the paper
/// reports benchmarks (Σ-counter rates). Public so the figure engine can
/// rebuild benchmark aggregates from individually cached kernel runs.
pub fn aggregate(bench: String, scheme: Scheme, kernels: Vec<KernelRun>) -> BenchResult {
    let sum = |f: fn(&Counters) -> u64| -> u64 { kernels.iter().map(|k| f(&k.counters)).sum() };
    let cycles = sum(|c| c.cycles).max(1);
    let instructions = sum(|c| c.instructions);
    let accesses = sum(|c| c.l1_accesses).max(1);
    let hits = sum(|c| c.l1_hits);
    let misses = sum(|c| c.l1_misses_completed).max(1);
    let lat = sum(|c| c.miss_latency_sum);
    let energy = kernels.iter().map(|k| k.energy.total()).sum();
    BenchResult {
        bench,
        scheme,
        ipc: instructions as f64 / cycles as f64,
        l1_hit_rate: hits as f64 / accesses as f64,
        aml: lat as f64 / misses as f64,
        energy,
        kernels,
    }
}

/// Harmonic mean of speedups (the paper's cross-benchmark aggregate).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let denom: f64 = values.iter().map(|v| 1.0 / v.max(1e-12)).sum();
    values.len() as f64 / denom
}

/// Arithmetic mean (used for hit rates and AML).
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use poise_ml::N_FEATURES;
    use workloads::{AccessMix, KernelSpec};

    fn const_model() -> TrainedModel {
        let mut alpha = [0.0; N_FEATURES];
        let mut beta = [0.0; N_FEATURES];
        alpha[N_FEATURES - 1] = (8.0f64).ln();
        beta[N_FEATURES - 1] = (2.0f64).ln();
        TrainedModel {
            alpha,
            beta,
            dispersion_n: 0.1,
            dispersion_p: 0.1,
            samples_used: 0,
            dropped_features: Vec::new(),
        }
    }

    fn bench() -> Benchmark {
        Benchmark::new(
            "t",
            vec![KernelSpec::steady("t#0", AccessMix::memory_sensitive(), 21)],
        )
    }

    #[test]
    fn every_scheme_runs_to_completion() {
        let setup = Setup::for_tests();
        let model = const_model();
        for scheme in [
            Scheme::Gto,
            Scheme::Swl,
            Scheme::PcalSwl,
            Scheme::Poise,
            Scheme::StaticBest,
            Scheme::RandomRestart,
            Scheme::Apcm,
        ] {
            let r = run_benchmark(&bench(), scheme, &model, &setup);
            assert!(r.ipc > 0.0, "{} produced no work", scheme.name());
            assert!(r.energy > 0.0);
        }
    }

    #[test]
    fn poise_runs_log_epochs() {
        let setup = Setup::for_tests();
        let r = run_benchmark(&bench(), Scheme::Poise, &const_model(), &setup);
        assert!(!r.kernels[0].epoch_logs.is_empty());
    }

    #[test]
    fn means_are_correct() {
        assert!((harmonic_mean(&[1.0, 2.0]) - 4.0 / 3.0).abs() < 1e-12);
        assert!((arithmetic_mean(&[1.0, 2.0]) - 1.5).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn aggregate_pools_counters() {
        let c1 = Counters {
            cycles: 100,
            instructions: 50,
            l1_accesses: 10,
            l1_hits: 5,
            l1_misses_completed: 5,
            miss_latency_sum: 500,
            ..Counters::default()
        };
        let mut c2 = c1;
        c2.instructions = 150;
        let e = EnergyBreakdown::from_counters(&c1, &gpu_sim::EnergyConfig::default(), 1);
        let runs = vec![
            KernelRun {
                kernel: "a".into(),
                counters: c1,
                energy: e,
                epoch_logs: vec![],
            },
            KernelRun {
                kernel: "b".into(),
                counters: c2,
                energy: e,
                epoch_logs: vec![],
            },
        ];
        let agg = aggregate("x".into(), Scheme::Gto, runs);
        assert!((agg.ipc - 1.0).abs() < 1e-12); // 200 instr / 200 cycles
        assert!((agg.l1_hit_rate - 0.5).abs() < 1e-12);
        assert!((agg.aml - 100.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_blob_round_trips() {
        let blob = PrefixBlob {
            cycles: 17_000,
            ctrl: "pcal-swl-v1 n:12 3ff0000000000000".into(),
            gpu: "gpu state\nline two\n".into(),
        };
        let text = blob.to_text();
        let back = PrefixBlob::parse(&text).expect("round-trip");
        assert_eq!(back.cycles, blob.cycles);
        assert_eq!(back.ctrl, blob.ctrl);
        assert_eq!(back.gpu, blob.gpu);
        // Stateless controllers carry an empty ctrl line — no trailing
        // space, still round-trips.
        let bare = PrefixBlob {
            cycles: 5,
            ctrl: String::new(),
            gpu: "g\n".into(),
        };
        let bare_text = bare.to_text();
        assert!(bare_text.contains("\nctrl\n"), "got: {bare_text:?}");
        assert_eq!(PrefixBlob::parse(&bare_text).unwrap().ctrl, "");
    }

    #[test]
    fn prefix_blob_parse_rejects_structural_damage() {
        let good = PrefixBlob {
            cycles: 9,
            ctrl: "x".into(),
            gpu: "g\n".into(),
        }
        .to_text();
        assert!(PrefixBlob::parse(&good).is_some());
        // Wrong header version, missing fields, truncation, empty body.
        assert!(PrefixBlob::parse(&good.replace("v1", "v9")).is_none());
        assert!(PrefixBlob::parse(&good.replace("cycles", "cycels")).is_none());
        assert!(PrefixBlob::parse(&good.replace("ctrl", "ctlr")).is_none());
        let truncated = &good[..good.rfind("g\n").unwrap()];
        assert!(PrefixBlob::parse(truncated).is_none(), "empty gpu text");
        assert!(PrefixBlob::parse("").is_none());
        assert!(PrefixBlob::parse("poise-prefix v1").is_none());
    }
}
