//! The Hardware Inference Engine (paper Section VI).
//!
//! Once per inference epoch (`Tperiod` cycles) the HIE:
//!
//! 1. steers the warp scheduler to the baseline point `(max, max)`, warms
//!    up for `Twarmup` cycles and samples the feature counters for
//!    `Tfeature` cycles;
//! 2. checks the compute-intensity cut-off: if the observed `In` exceeds
//!    `Imax`, inference terminates early and the kernel runs at maximum
//!    warps for the remainder of the epoch;
//! 3. otherwise steers to the reference point `(1, 1)` and samples again;
//! 4. computes the link function (Eq. 13) with the compiler-provided
//!    feature weights, reverse-scales the predicted tuple to the kernel's
//!    occupancy and installs it;
//! 5. refines the prediction with a gradient-ascent local search: first
//!    along N with initial stride `εN`, then along p with stride `εp`,
//!    sampling each candidate for `Tsearch` cycles after warmup, moving to
//!    a better neighbour at the same stride or halving the stride at a
//!    local maximum until the stride reaches zero;
//! 6. executes at the converged tuple until the epoch ends, then resets.
//!
//! The implementation is a cycle-driven FSM, mirroring the paper's
//! seven-state hardware FSM (§VII-I).

use crate::ctrl_state::{Loader, Saver};
use crate::params::PoiseParams;
use gpu_sim::{ControlCtx, Controller, WarpTuple, WindowSample};
use poise_ml::{scoring, FeatureVector, TrainedModel};

/// Version header of the serialized HIE state (see
/// [`Controller::save_state`]).
const STATE_HEADER: &str = "poise-hie-v1";

/// One epoch's record: what was predicted and where the search converged
/// (consumed by the Fig. 10 displacement and Fig. 17 trajectory studies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochLog {
    /// Cycle at which the prediction was made.
    pub cycle: u64,
    /// Tuple predicted by the link function (after reverse scaling).
    pub predicted: WarpTuple,
    /// Tuple after local search convergence.
    pub searched: WarpTuple,
    /// Whether the compute-intensive early-out fired (no prediction).
    pub early_out: bool,
}

impl EpochLog {
    /// |ΔN| between prediction and converged tuple.
    pub fn displacement_n(&self) -> f64 {
        (self.predicted.n as f64 - self.searched.n as f64).abs()
    }

    /// |Δp| between prediction and converged tuple.
    pub fn displacement_p(&self) -> f64 {
        (self.predicted.p as f64 - self.searched.p as f64).abs()
    }

    /// Euclidean displacement in the {N, p} plane.
    pub fn displacement_euclid(&self) -> f64 {
        self.predicted.distance(&self.searched)
    }
}

/// Which axis the local search is currently exploring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    N,
    P,
}

/// The local-search sub-machine.
#[derive(Debug, Clone)]
struct LocalSearch {
    axis: Axis,
    stride: usize,
    stride_p_initial: usize,
    current: WarpTuple,
    current_ipc: Option<f64>,
    /// Candidate tuples still to sample at this step (minus/plus side).
    pending: Vec<WarpTuple>,
    /// Sampled (tuple, ipc) pairs for the current step.
    sampled: Vec<(WarpTuple, f64)>,
    /// The tuple currently being measured.
    measuring: Option<WarpTuple>,
    max_warps: usize,
}

impl LocalSearch {
    fn new(start: WarpTuple, params: &PoiseParams, max_warps: usize) -> Self {
        LocalSearch {
            axis: Axis::N,
            stride: params.stride_n,
            stride_p_initial: params.stride_p,
            current: start,
            current_ipc: None,
            pending: Vec::new(),
            sampled: Vec::new(),
            measuring: None,
            max_warps,
        }
    }

    fn neighbour(&self, dir: i64) -> Option<WarpTuple> {
        let s = self.stride as i64 * dir;
        let (n, p) = match self.axis {
            Axis::N => (self.current.n as i64 + s, self.current.p as i64),
            Axis::P => (self.current.n as i64, self.current.p as i64 + s),
        };
        if n < 1 || p < 1 || p > n || n > self.max_warps as i64 {
            return None;
        }
        Some(WarpTuple::new(n as usize, p as usize, self.max_warps))
    }

    /// Prepare the next measurement; returns the tuple to steer to, or
    /// `None` when the search has converged on both axes.
    fn next_measurement(&mut self) -> Option<WarpTuple> {
        loop {
            if self.current_ipc.is_none() {
                self.measuring = Some(self.current);
                return Some(self.current);
            }
            if let Some(t) = self.pending.pop() {
                self.measuring = Some(t);
                return Some(t);
            }
            if self.measuring.is_some() || !self.sampled.is_empty() {
                // A step just completed: decide where to go.
                self.decide();
                if self.stride == 0 {
                    match self.axis {
                        Axis::N => {
                            // Switch to the p axis, keeping the converged N.
                            self.axis = Axis::P;
                            self.stride = self.stride_p_initial;
                            self.sampled.clear();
                            self.measuring = None;
                            if self.stride == 0 {
                                return None;
                            }
                            self.queue_step();
                            continue;
                        }
                        Axis::P => return None,
                    }
                }
                continue;
            }
            // Fresh step at the current stride.
            if self.stride == 0 {
                return None;
            }
            self.queue_step();
            if self.pending.is_empty() {
                // No legal neighbours at this stride: halve and retry.
                self.stride /= 2;
                if self.stride == 0 {
                    match self.axis {
                        Axis::N => {
                            self.axis = Axis::P;
                            self.stride = self.stride_p_initial;
                            continue;
                        }
                        Axis::P => return None,
                    }
                }
            }
        }
    }

    fn queue_step(&mut self) {
        self.pending.clear();
        self.sampled.clear();
        for dir in [-1i64, 1] {
            if let Some(t) = self.neighbour(dir) {
                self.pending.push(t);
            }
        }
    }

    /// Record the measured IPC of the tuple prepared by
    /// [`Self::next_measurement`].
    fn record(&mut self, ipc: f64) {
        if let Some(t) = self.measuring.take() {
            if t == self.current && self.current_ipc.is_none() {
                self.current_ipc = Some(ipc);
            } else {
                self.sampled.push((t, ipc));
            }
        }
    }

    /// Gradient-ascent decision: move to the best neighbour if it beats
    /// the current point (same stride), otherwise halve the stride.
    fn decide(&mut self) {
        let cur = self.current_ipc.unwrap_or(0.0);
        let best = self
            .sampled
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            Some((t, ipc)) if ipc > cur => {
                self.current = t;
                self.current_ipc = Some(ipc);
            }
            _ => {
                self.stride /= 2;
            }
        }
        self.sampled.clear();
        self.measuring = None;
        if self.stride > 0 {
            self.queue_step();
        }
    }
}

/// FSM states (the paper's 7-state HIE, §VII-I).
#[derive(Debug, Clone)]
enum HieState {
    /// Warming up at the baseline point (max, max).
    WarmupBase { until: u64 },
    /// Sampling features at the baseline point.
    SampleBase { until: u64 },
    /// Warming up at the reference point (1, 1).
    WarmupRef { until: u64 },
    /// Sampling features at the reference point.
    SampleRef { until: u64 },
    /// Local search: warming up at a candidate tuple.
    SearchWarmup { until: u64, search: LocalSearch },
    /// Local search: sampling a candidate tuple.
    SearchSample { until: u64, search: LocalSearch },
    /// Converged; running at the final tuple until the epoch ends.
    Stable,
}

/// Poise's runtime controller: the hardware inference engine.
#[derive(Debug)]
pub struct PoiseController {
    params: PoiseParams,
    model: TrainedModel,
    state: HieState,
    epoch_start: u64,
    base_sample: Option<WindowSample>,
    predicted: Option<WarpTuple>,
    /// Per-epoch prediction/search records across the controller's
    /// lifetime (kernel boundaries included).
    pub log: Vec<EpochLog>,
    /// Trace of `(cycle, tuple)` steering decisions (Fig. 17b).
    pub tuple_trace: Vec<(u64, WarpTuple)>,
}

impl PoiseController {
    /// Build a controller from trained feature weights.
    pub fn new(model: TrainedModel, params: PoiseParams) -> Self {
        PoiseController {
            params,
            model,
            state: HieState::Stable, // replaced on kernel start
            epoch_start: 0,
            base_sample: None,
            predicted: None,
            log: Vec::new(),
            tuple_trace: Vec::new(),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &PoiseParams {
        &self.params
    }

    fn steer(&mut self, ctx: &mut ControlCtx, t: WarpTuple) {
        ctx.set_tuple_all(t);
        ctx.reset_window();
        self.tuple_trace.push((ctx.cycle, t));
    }

    fn begin_epoch(&mut self, ctx: &mut ControlCtx) {
        self.epoch_start = ctx.cycle;
        self.base_sample = None;
        self.predicted = None;
        let base = WarpTuple::max(ctx.kernel_warps);
        self.steer(ctx, base);
        self.state = HieState::WarmupBase {
            until: ctx.cycle + self.params.t_warmup,
        };
    }

    fn predict(&self, ctx: &ControlCtx, base: &WindowSample, refp: &WindowSample) -> WarpTuple {
        let x = FeatureVector::from_samples(base, refp);
        let scaled = self.model.predict(&x, ctx.max_warps);
        scoring::reverse_scale_tuple(scaled, ctx.kernel_warps, ctx.max_warps)
    }

    fn enter_search(&mut self, ctx: &mut ControlCtx, start: WarpTuple) {
        let mut search = LocalSearch::new(start, &self.params, ctx.kernel_warps);
        match search.next_measurement() {
            Some(t) => {
                self.steer(ctx, t);
                self.state = HieState::SearchWarmup {
                    until: ctx.cycle + self.params.t_warmup,
                    search,
                };
            }
            None => {
                self.finish(ctx, start);
            }
        }
    }

    fn finish(&mut self, ctx: &mut ControlCtx, t: WarpTuple) {
        if let Some(predicted) = self.predicted {
            self.log.push(EpochLog {
                cycle: ctx.cycle,
                predicted,
                searched: t,
                early_out: false,
            });
        }
        self.steer(ctx, t);
        self.state = HieState::Stable;
    }
}

impl LocalSearch {
    fn save(&self, s: &mut Saver) {
        // Exhaustive destructure: adding a LocalSearch field breaks this
        // until the serialized encoding is versioned alongside it.
        let LocalSearch {
            axis,
            stride,
            stride_p_initial,
            current,
            current_ipc,
            pending,
            sampled,
            measuring,
            max_warps,
        } = self;
        s.lit(match axis {
            Axis::N => "n",
            Axis::P => "p",
        });
        s.usize(*stride);
        s.usize(*stride_p_initial);
        s.tuple(*current);
        s.opt_f64(*current_ipc);
        s.tuples(pending);
        s.pairs(sampled);
        s.opt_tuple(*measuring);
        s.usize(*max_warps);
    }

    fn load(l: &mut Loader) -> Option<Self> {
        let axis = match l.next()? {
            "n" => Axis::N,
            "p" => Axis::P,
            _ => return None,
        };
        Some(LocalSearch {
            axis,
            stride: l.usize()?,
            stride_p_initial: l.usize()?,
            current: l.tuple()?,
            current_ipc: l.opt_f64()?,
            pending: l.tuples()?,
            sampled: l.pairs()?,
            measuring: l.opt_tuple()?,
            max_warps: l.usize()?,
        })
    }
}

impl Controller for PoiseController {
    fn on_kernel_start(&mut self, ctx: &mut ControlCtx) {
        self.begin_epoch(ctx);
    }

    fn on_cycle(&mut self, ctx: &mut ControlCtx) {
        // Epoch rollover resets the whole inference (paper: predictions are
        // reset at the end of each inference epoch).
        if ctx.cycle.saturating_sub(self.epoch_start) >= self.params.t_period {
            self.begin_epoch(ctx);
            return;
        }
        match &mut self.state {
            HieState::WarmupBase { until } => {
                if ctx.cycle >= *until {
                    ctx.reset_window();
                    self.state = HieState::SampleBase {
                        until: ctx.cycle + self.params.t_feature,
                    };
                }
            }
            HieState::SampleBase { until } => {
                if ctx.cycle >= *until {
                    let sample = ctx.window();
                    // Compute-intensive early-out: run at max warps.
                    if sample.in_avg > self.params.i_max {
                        let t = WarpTuple::max(ctx.kernel_warps);
                        self.log.push(EpochLog {
                            cycle: ctx.cycle,
                            predicted: t,
                            searched: t,
                            early_out: true,
                        });
                        self.steer(ctx, t);
                        self.state = HieState::Stable;
                        return;
                    }
                    self.base_sample = Some(sample);
                    self.steer(ctx, WarpTuple { n: 1, p: 1 });
                    self.state = HieState::WarmupRef {
                        until: ctx.cycle + self.params.t_warmup,
                    };
                }
            }
            HieState::WarmupRef { until } => {
                if ctx.cycle >= *until {
                    ctx.reset_window();
                    self.state = HieState::SampleRef {
                        until: ctx.cycle + self.params.t_feature,
                    };
                }
            }
            HieState::SampleRef { until } => {
                if ctx.cycle >= *until {
                    let refp = ctx.window();
                    let base = self.base_sample.expect("base sampled first");
                    let predicted = self.predict(ctx, &base, &refp);
                    self.predicted = Some(predicted);
                    self.enter_search(ctx, predicted);
                }
            }
            HieState::SearchWarmup { until, search } => {
                if ctx.cycle >= *until {
                    ctx.reset_window();
                    let until = ctx.cycle + self.params.t_search;
                    let search = search.clone();
                    self.state = HieState::SearchSample { until, search };
                }
            }
            HieState::SearchSample { until, search } => {
                if ctx.cycle >= *until {
                    let ipc = ctx.window().ipc;
                    let mut search = search.clone();
                    search.record(ipc);
                    match search.next_measurement() {
                        Some(t) => {
                            self.steer(ctx, t);
                            self.state = HieState::SearchWarmup {
                                until: ctx.cycle + self.params.t_warmup,
                                search,
                            };
                        }
                        None => {
                            let t = search.current;
                            self.finish(ctx, t);
                        }
                    }
                }
            }
            HieState::Stable => {}
        }
    }

    fn next_wake(&self, _now: u64) -> Option<u64> {
        // The FSM acts only at epoch rollover or when the active state's
        // deadline expires; `on_cycle` is a pure no-op before both.
        let epoch_end = self.epoch_start + self.params.t_period;
        let state_deadline = match &self.state {
            HieState::WarmupBase { until }
            | HieState::SampleBase { until }
            | HieState::WarmupRef { until }
            | HieState::SampleRef { until }
            | HieState::SearchWarmup { until, .. }
            | HieState::SearchSample { until, .. } => Some(*until),
            HieState::Stable => None,
        };
        Some(state_deadline.map_or(epoch_end, |u| u.min(epoch_end)))
    }

    fn save_state(&self) -> String {
        // Exhaustive destructure: a new mutable field must be added to the
        // encoding (params/model are spec-derived and rebuilt on restore).
        let PoiseController {
            params: _,
            model: _,
            state,
            epoch_start,
            base_sample,
            predicted,
            log,
            tuple_trace,
        } = self;
        let mut s = Saver::new(STATE_HEADER);
        s.u64(*epoch_start);
        s.opt_window(base_sample.as_ref());
        s.opt_tuple(*predicted);
        s.usize(log.len());
        for e in log {
            let EpochLog {
                cycle,
                predicted,
                searched,
                early_out,
            } = *e;
            s.u64(cycle);
            s.tuple(predicted);
            s.tuple(searched);
            s.bool(early_out);
        }
        s.usize(tuple_trace.len());
        for &(cycle, t) in tuple_trace {
            s.u64(cycle);
            s.tuple(t);
        }
        match state {
            HieState::WarmupBase { until } => {
                s.lit("warmup-base");
                s.u64(*until);
            }
            HieState::SampleBase { until } => {
                s.lit("sample-base");
                s.u64(*until);
            }
            HieState::WarmupRef { until } => {
                s.lit("warmup-ref");
                s.u64(*until);
            }
            HieState::SampleRef { until } => {
                s.lit("sample-ref");
                s.u64(*until);
            }
            HieState::SearchWarmup { until, search } => {
                s.lit("search-warmup");
                s.u64(*until);
                search.save(&mut s);
            }
            HieState::SearchSample { until, search } => {
                s.lit("search-sample");
                s.u64(*until);
                search.save(&mut s);
            }
            HieState::Stable => s.lit("stable"),
        }
        s.finish()
    }

    fn load_state(&mut self, state: &str) -> bool {
        // All-or-nothing: parse the full stream into locals, commit last.
        let parse = || -> Option<_> {
            let mut l = Loader::new(state, STATE_HEADER)?;
            let epoch_start = l.u64()?;
            let base_sample = l.opt_window()?;
            let predicted = l.opt_tuple()?;
            let n_log = l.usize()?;
            let mut log = Vec::with_capacity(n_log.min(4096));
            for _ in 0..n_log {
                log.push(EpochLog {
                    cycle: l.u64()?,
                    predicted: l.tuple()?,
                    searched: l.tuple()?,
                    early_out: l.bool()?,
                });
            }
            let n_trace = l.usize()?;
            let mut tuple_trace = Vec::with_capacity(n_trace.min(4096));
            for _ in 0..n_trace {
                tuple_trace.push((l.u64()?, l.tuple()?));
            }
            let fsm = match l.next()? {
                "warmup-base" => HieState::WarmupBase { until: l.u64()? },
                "sample-base" => HieState::SampleBase { until: l.u64()? },
                "warmup-ref" => HieState::WarmupRef { until: l.u64()? },
                "sample-ref" => HieState::SampleRef { until: l.u64()? },
                "search-warmup" => HieState::SearchWarmup {
                    until: l.u64()?,
                    search: LocalSearch::load(&mut l)?,
                },
                "search-sample" => HieState::SearchSample {
                    until: l.u64()?,
                    search: LocalSearch::load(&mut l)?,
                },
                "stable" => HieState::Stable,
                _ => return None,
            };
            l.done()?;
            Some((epoch_start, base_sample, predicted, log, tuple_trace, fsm))
        };
        let Some((epoch_start, base_sample, predicted, log, tuple_trace, fsm)) = parse() else {
            return false;
        };
        self.epoch_start = epoch_start;
        self.base_sample = base_sample;
        self.predicted = predicted;
        self.log = log;
        self.tuple_trace = tuple_trace;
        self.state = fsm;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig};
    use poise_ml::N_FEATURES;
    use workloads::{AccessMix, KernelSpec};

    /// A hand-built model that always predicts roughly (8, 2) regardless
    /// of features: ln 8 ≈ 2.079 on the intercept, ln 2 ≈ 0.693.
    fn const_model(n: f64, p: f64) -> TrainedModel {
        let mut alpha = [0.0; N_FEATURES];
        let mut beta = [0.0; N_FEATURES];
        alpha[N_FEATURES - 1] = n.ln();
        beta[N_FEATURES - 1] = p.ln();
        TrainedModel {
            alpha,
            beta,
            dispersion_n: 0.1,
            dispersion_p: 0.1,
            samples_used: 0,
            dropped_features: Vec::new(),
        }
    }

    fn memory_kernel() -> KernelSpec {
        KernelSpec::steady("hie-test", AccessMix::memory_sensitive(), 9)
    }

    fn compute_kernel() -> KernelSpec {
        KernelSpec::steady("hie-ci", AccessMix::compute_intensive(), 9)
    }

    #[test]
    fn hie_predicts_and_searches_each_epoch() {
        let params = PoiseParams::scaled_down(20); // epoch = 10k cycles
        let mut ctrl = PoiseController::new(const_model(8.0, 2.0), params);
        let mut gpu = Gpu::new(GpuConfig::scaled(1), &memory_kernel());
        gpu.run(&mut ctrl, 30_000);
        assert!(
            ctrl.log.len() >= 2,
            "multiple epochs must log predictions, got {}",
            ctrl.log.len()
        );
        let l = &ctrl.log[0];
        assert!(!l.early_out);
        // Prediction honours the constant model (±1 rounding).
        assert!((l.predicted.n as i64 - 8).abs() <= 1, "{:?}", l.predicted);
        assert!((l.predicted.p as i64 - 2).abs() <= 1, "{:?}", l.predicted);
        // Search stays in the valid domain.
        assert!(l.searched.p <= l.searched.n);
    }

    #[test]
    fn compute_intensive_kernels_early_out_at_max_warps() {
        let params = PoiseParams::scaled_down(20);
        let mut ctrl = PoiseController::new(const_model(4.0, 1.0), params);
        let mut gpu = Gpu::new(GpuConfig::scaled(1), &compute_kernel());
        gpu.run(&mut ctrl, 15_000);
        assert!(!ctrl.log.is_empty());
        assert!(
            ctrl.log[0].early_out,
            "In > Imax must trigger the early-out"
        );
        assert_eq!(ctrl.log[0].searched, WarpTuple { n: 24, p: 24 });
    }

    #[test]
    fn stride_zero_skips_local_search() {
        let params = PoiseParams::scaled_down(20).with_strides(0, 0);
        let mut ctrl = PoiseController::new(const_model(6.0, 3.0), params);
        let mut gpu = Gpu::new(GpuConfig::scaled(1), &memory_kernel());
        gpu.run(&mut ctrl, 15_000);
        assert!(!ctrl.log.is_empty());
        let l = &ctrl.log[0];
        assert_eq!(
            l.predicted, l.searched,
            "no search means prediction is final"
        );
    }

    #[test]
    fn displacement_metrics_are_consistent() {
        let log = EpochLog {
            cycle: 0,
            predicted: WarpTuple::new(8, 4, 24),
            searched: WarpTuple::new(10, 1, 24),
            early_out: false,
        };
        assert_eq!(log.displacement_n(), 2.0);
        assert_eq!(log.displacement_p(), 3.0);
        assert!((log.displacement_euclid() - (13f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn tuple_trace_records_steering() {
        let params = PoiseParams::scaled_down(20);
        let mut ctrl = PoiseController::new(const_model(8.0, 2.0), params);
        let mut gpu = Gpu::new(GpuConfig::scaled(1), &memory_kernel());
        gpu.run(&mut ctrl, 12_000);
        // At least: baseline, (1,1), prediction, search points.
        assert!(ctrl.tuple_trace.len() >= 4);
        assert_eq!(ctrl.tuple_trace[1].1, WarpTuple { n: 1, p: 1 });
    }

    #[test]
    fn local_search_moves_toward_better_ipc() {
        // Pure unit test of the search machine against a synthetic concave
        // IPC function peaking at n = 12 (p fixed dimension also concave
        // at p = 3).
        let params = PoiseParams::default().with_strides(2, 4);
        let mut s = LocalSearch::new(WarpTuple::new(8, 8, 24), &params, 24);
        let ipc_of = |t: WarpTuple| {
            let dn = t.n as f64 - 12.0;
            let dp = t.p as f64 - 3.0;
            1.0 - 0.01 * dn * dn - 0.005 * dp * dp
        };
        let mut steps = 0;
        while let Some(t) = s.next_measurement() {
            s.record(ipc_of(t));
            steps += 1;
            assert!(steps < 200, "search must terminate");
        }
        assert!(
            (s.current.n as i64 - 12).abs() <= 1,
            "converged N {:?}",
            s.current
        );
        assert!(
            (s.current.p as i64 - 3).abs() <= 1,
            "converged p {:?}",
            s.current
        );
    }
}
