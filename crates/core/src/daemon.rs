//! The sweep daemon: a long-running service front-end for the
//! experiment engine and lease fabric.
//!
//! ## Design
//!
//! `poised` (the daemon binary in `poise-bench`) listens on a Unix
//! domain socket (`results/daemon.sock`) speaking a line-oriented JSON
//! protocol (see [`Request`] / [`Event`]; hand-rolled on
//! [`crate::fabric::json`], matching the registry-free constraint).
//! Clients `submit` experiment plans as the same `--set` / `--sweep` /
//! `--only` overlay strings `run_all` takes; a planner callback
//! (supplied by the binary, which owns the figure registry) expands
//! each into its declared job list, and the daemon:
//!
//! * **coalesces overlapping graphs across clients** — submissions are
//!   identified by the spec-hash closure of their job graph
//!   ([`crate::jobs::graph_closure`]), so two clients sweeping
//!   overlapping knob ranges share every common job exactly as sweep
//!   points do within one plan (the `cross_client_shared` count in the
//!   [`Event::Admitted`] reply is the overlap with every queued and
//!   running submission);
//! * **enforces admission control** — a bounded submission queue
//!   ([`DaemonConfig::max_queue`]) and a cap on unique in-flight jobs
//!   per scheduling batch ([`DaemonConfig::max_inflight`]);
//! * **schedules fairly** — each batch admits queued submissions in
//!   `(priority desc, arrival asc)` order until the job cap is hit
//!   (always at least one), and interleaves their declared job lists
//!   round-robin so no client's wave starves another's;
//! * **executes on the existing lease fabric** — batches run through
//!   [`crate::fabric::run_worker`] over the shared content-addressed
//!   cache, inheriting retry/backoff/watchdog/fault classification and
//!   cooperating (via lease files) with any standalone workers on the
//!   same store;
//! * **streams progress** — the engine's [`ProgressSink`] events are
//!   routed to every subscribed client as JSONL ([`Event::Job`] /
//!   [`Event::Progress`]) and appended to
//!   `results/daemon/events.jsonl`, so a crashed client can
//!   reconstruct its submission's history;
//! * **supports cooperative cancellation** — `cancel <id>` withdraws a
//!   submission; jobs still wanted by another live submission keep
//!   running, jobs with no subscriber left are vetoed (the engine
//!   classifies them [`crate::jobs::FailClass::Cancelled`]) and any
//!   executing attempt is interrupted at its next simulator barrier
//!   via [`Engine::cancel_spec`];
//! * **shuts down gracefully** — `shutdown` drains the queue (default)
//!   or cancels everything (`"mode":"now"`); either way the daemon
//!   reaps stale leases and `.tmp-*` orphans on the way out (and on
//!   the way in, so a daemon restarted after SIGKILL never strands
//!   claims). Long simulations checkpoint at `snapshot_every` barriers
//!   (see `poise::jobs::factor_prefixes`), so even a `now` shutdown
//!   loses at most one barrier interval of work.
//!
//! A client that dies mid-stream only loses its event stream: the
//! submission keeps running (its results land in the shared cache for
//! the next request), which is what makes the cache a global
//! memoization table rather than a per-connection scratch space.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::fabric::json::{obj, Json};
use crate::fabric::FabricConfig;
use crate::jobs::{graph_closure, Engine, JobEvent, JobStatus, ProgressSink, SimJob};

/// Protocol version: bump on any grammar change and keep
/// `protocol_golden` in sync (like `spec_golden.rs` for cache keys).
pub const PROTOCOL_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Protocol: requests.
// ---------------------------------------------------------------------------

/// One `submit` payload: the same overlay strings `run_all` accepts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SubmitRequest {
    /// Client name, for attribution in events and status (free-form).
    pub client: String,
    /// Scheduling priority: higher runs earlier. Ties break by arrival.
    pub priority: i64,
    /// `--set k=v` overlay assignments.
    pub set: Vec<String>,
    /// `--sweep k=a,b,c` axes.
    pub sweep: Vec<String>,
    /// `--only` figure filter (`None` = every figure).
    pub only: Option<Vec<String>>,
}

/// One request line from a client. The wire format is a single JSON
/// object per line: `{"v":1,"cmd":"submit",...}`. Unknown fields are
/// ignored (forward compatibility); a missing or malformed `cmd` is a
/// protocol error answered with [`Event::Error`], never a panic or a
/// silent drop.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a plan; the connection then streams this submission's
    /// events until [`Event::Complete`].
    Submit(SubmitRequest),
    /// Ask for queued/running submissions.
    Status,
    /// Withdraw a submission by id (cooperative; shared jobs survive).
    Cancel { id: String },
    /// Stop the daemon: drain the queue first (default) or cancel
    /// everything (`now = true`).
    Shutdown { now: bool },
}

/// String-array field helper: `None` when absent, `Err` when present
/// but not an array of strings.
fn str_arr(v: &Json, key: &str) -> Result<Option<Vec<String>>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|i| i.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be an array of strings")),
        Some(_) => Err(format!("field {key:?} must be an array of strings")),
    }
}

impl Request {
    /// Parse one request line. `Err` carries the protocol error text
    /// (sent back as [`Event::Error`]).
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)
            .ok_or_else(|| "malformed request: not a JSON object per line".to_string())?;
        if v.get("cmd").is_none() && !matches!(v, Json::Obj(_)) {
            return Err("malformed request: not a JSON object".to_string());
        }
        let version = v
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing protocol version field \"v\"".to_string())?;
        if version < 1 {
            return Err(format!("unsupported protocol version {version}"));
        }
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing request field \"cmd\"".to_string())?;
        match cmd {
            "submit" => Ok(Request::Submit(SubmitRequest {
                client: v
                    .get("client")
                    .and_then(Json::as_str)
                    .unwrap_or("anon")
                    .to_string(),
                priority: v.get("priority").and_then(Json::as_f64).unwrap_or(0.0) as i64,
                set: str_arr(&v, "set")?.unwrap_or_default(),
                sweep: str_arr(&v, "sweep")?.unwrap_or_default(),
                only: str_arr(&v, "only")?,
            })),
            "status" => Ok(Request::Status),
            "cancel" => Ok(Request::Cancel {
                id: v
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "cancel needs an \"id\" field".to_string())?
                    .to_string(),
            }),
            "shutdown" => Ok(Request::Shutdown {
                now: matches!(v.get("mode").and_then(Json::as_str), Some("now")),
            }),
            other => Err(format!("unknown cmd {other:?}")),
        }
    }

    /// Render to the canonical single-line wire form.
    pub fn render(&self) -> String {
        let vnum = Json::Num(PROTOCOL_VERSION as f64);
        let arr =
            |items: &[String]| Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect());
        match self {
            Request::Submit(s) => {
                let mut fields = vec![
                    ("v", vnum),
                    ("cmd", Json::Str("submit".into())),
                    ("client", Json::Str(s.client.clone())),
                    ("priority", Json::Num(s.priority as f64)),
                    ("set", arr(&s.set)),
                    ("sweep", arr(&s.sweep)),
                ];
                if let Some(only) = &s.only {
                    fields.push(("only", arr(only)));
                }
                obj(fields).render()
            }
            Request::Status => obj(vec![("v", vnum), ("cmd", Json::Str("status".into()))]).render(),
            Request::Cancel { id } => obj(vec![
                ("v", vnum),
                ("cmd", Json::Str("cancel".into())),
                ("id", Json::Str(id.clone())),
            ])
            .render(),
            Request::Shutdown { now } => obj(vec![
                ("v", vnum),
                ("cmd", Json::Str("shutdown".into())),
                ("mode", Json::Str(if *now { "now" } else { "drain" }.into())),
            ])
            .render(),
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol: events (server → client, JSONL).
// ---------------------------------------------------------------------------

/// One submission's view in a status reply.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmissionView {
    pub id: String,
    pub client: String,
    pub priority: i64,
    /// `"queued"` or `"running"`.
    pub state: String,
    /// Unique jobs in this submission's closure.
    pub total: u64,
    /// Jobs resolved so far.
    pub done: u64,
}

impl SubmissionView {
    fn to_json(&self) -> Json {
        obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("client", Json::Str(self.client.clone())),
            ("priority", Json::Num(self.priority as f64)),
            ("state", Json::Str(self.state.clone())),
            ("total", Json::Num(self.total as f64)),
            ("done", Json::Num(self.done as f64)),
        ])
    }

    fn from_json(v: &Json) -> Option<SubmissionView> {
        Some(SubmissionView {
            id: v.get("id")?.as_str()?.to_string(),
            client: v.get("client")?.as_str()?.to_string(),
            priority: v.get("priority")?.as_f64()? as i64,
            state: v.get("state")?.as_str()?.to_string(),
            total: v.get("total")?.as_u64()?,
            done: v.get("done")?.as_u64()?,
        })
    }
}

/// One event line from the daemon (also the reply format: every
/// request is answered by at least one event). Unknown fields are
/// ignored on parse, so the daemon may add detail without breaking
/// older clients.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A protocol or planning error (the request achieved nothing).
    Error { error: String },
    /// The submission was admitted to the queue. `cross_client_shared`
    /// counts its closure jobs already owned by queued or running
    /// submissions of *other* clients' plans — work this client gets
    /// for free.
    Admitted {
        id: String,
        client: String,
        jobs: u64,
        cross_client_shared: u64,
        queue_depth: u64,
    },
    /// The submission was refused at admission (queue full, shutdown).
    Rejected { client: String, reason: String },
    /// One job lifecycle event of a submission (started / retried /
    /// hit / done / recovered / failed / cancelled).
    Job {
        id: String,
        label: String,
        spec_hash: String,
        status: JobStatus,
        attempts: u64,
        wall: f64,
        error: Option<String>,
    },
    /// Per-submission completion fraction after each resolved job.
    Progress {
        id: String,
        done: u64,
        total: u64,
        percent: u64,
    },
    /// The submission finished: `outcome` is `"pass"`, `"failed"` or
    /// `"cancelled"`; the counters are this submission's share.
    Complete {
        id: String,
        outcome: String,
        executed: u64,
        cache_hits: u64,
        failed: u64,
        cancelled: u64,
    },
    /// Reply to `status`.
    Status {
        running: Vec<SubmissionView>,
        queued: Vec<SubmissionView>,
    },
    /// Reply to `cancel` / `shutdown`.
    Ack { cmd: String, id: Option<String> },
}

impl Event {
    /// The event as a JSON object (the wire form is `render()`).
    pub fn to_json(&self) -> Json {
        let vnum = Json::Num(PROTOCOL_VERSION as f64);
        match self {
            Event::Error { error } => obj(vec![
                ("v", vnum),
                ("event", Json::Str("error".into())),
                ("error", Json::Str(error.clone())),
            ]),
            Event::Admitted {
                id,
                client,
                jobs,
                cross_client_shared,
                queue_depth,
            } => obj(vec![
                ("v", vnum),
                ("event", Json::Str("admitted".into())),
                ("id", Json::Str(id.clone())),
                ("client", Json::Str(client.clone())),
                ("jobs", Json::Num(*jobs as f64)),
                (
                    "cross_client_shared",
                    Json::Num(*cross_client_shared as f64),
                ),
                ("queue_depth", Json::Num(*queue_depth as f64)),
            ]),
            Event::Rejected { client, reason } => obj(vec![
                ("v", vnum),
                ("event", Json::Str("rejected".into())),
                ("client", Json::Str(client.clone())),
                ("reason", Json::Str(reason.clone())),
            ]),
            Event::Job {
                id,
                label,
                spec_hash,
                status,
                attempts,
                wall,
                error,
            } => {
                let mut fields = vec![
                    ("v", vnum),
                    ("event", Json::Str("job".into())),
                    ("id", Json::Str(id.clone())),
                    ("label", Json::Str(label.clone())),
                    ("spec_hash", Json::Str(spec_hash.clone())),
                    ("status", Json::Str(status.name().into())),
                    ("attempts", Json::Num(*attempts as f64)),
                    ("wall", Json::Num((*wall * 1000.0).round() / 1000.0)),
                ];
                if let Some(e) = error {
                    fields.push(("error", Json::Str(e.clone())));
                }
                obj(fields)
            }
            Event::Progress {
                id,
                done,
                total,
                percent,
            } => obj(vec![
                ("v", vnum),
                ("event", Json::Str("progress".into())),
                ("id", Json::Str(id.clone())),
                ("done", Json::Num(*done as f64)),
                ("total", Json::Num(*total as f64)),
                ("percent", Json::Num(*percent as f64)),
            ]),
            Event::Complete {
                id,
                outcome,
                executed,
                cache_hits,
                failed,
                cancelled,
            } => obj(vec![
                ("v", vnum),
                ("event", Json::Str("complete".into())),
                ("id", Json::Str(id.clone())),
                ("outcome", Json::Str(outcome.clone())),
                ("executed", Json::Num(*executed as f64)),
                ("cache_hits", Json::Num(*cache_hits as f64)),
                ("failed", Json::Num(*failed as f64)),
                ("cancelled", Json::Num(*cancelled as f64)),
            ]),
            Event::Status { running, queued } => obj(vec![
                ("v", vnum),
                ("event", Json::Str("status".into())),
                (
                    "running",
                    Json::Arr(running.iter().map(SubmissionView::to_json).collect()),
                ),
                (
                    "queued",
                    Json::Arr(queued.iter().map(SubmissionView::to_json).collect()),
                ),
            ]),
            Event::Ack { cmd, id } => {
                let mut fields = vec![
                    ("v", vnum),
                    ("event", Json::Str("ack".into())),
                    ("cmd", Json::Str(cmd.clone())),
                ];
                if let Some(id) = id {
                    fields.push(("id", Json::Str(id.clone())));
                }
                obj(fields)
            }
        }
    }

    /// Render to the canonical single-line wire form.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parse one event line. `Err` carries the protocol error.
    pub fn parse_line(line: &str) -> Result<Event, String> {
        let v = Json::parse(line).ok_or_else(|| "malformed event: not JSON".to_string())?;
        let kind = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing event field \"event\"".to_string())?;
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        let n = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        match kind {
            "error" => Ok(Event::Error { error: s("error")? }),
            "admitted" => Ok(Event::Admitted {
                id: s("id")?,
                client: s("client")?,
                jobs: n("jobs")?,
                cross_client_shared: n("cross_client_shared")?,
                queue_depth: n("queue_depth")?,
            }),
            "rejected" => Ok(Event::Rejected {
                client: s("client")?,
                reason: s("reason")?,
            }),
            "job" => Ok(Event::Job {
                id: s("id")?,
                label: s("label")?,
                spec_hash: s("spec_hash")?,
                status: JobStatus::from_name(&s("status")?)
                    .ok_or_else(|| "unknown job status".to_string())?,
                attempts: n("attempts")?,
                wall: v.get("wall").and_then(Json::as_f64).unwrap_or(0.0),
                error: v.get("error").and_then(Json::as_str).map(str::to_string),
            }),
            "progress" => Ok(Event::Progress {
                id: s("id")?,
                done: n("done")?,
                total: n("total")?,
                percent: n("percent")?,
            }),
            "complete" => Ok(Event::Complete {
                id: s("id")?,
                outcome: s("outcome")?,
                executed: n("executed")?,
                cache_hits: n("cache_hits")?,
                failed: n("failed")?,
                cancelled: n("cancelled")?,
            }),
            "status" => {
                let views = |key: &str| -> Result<Vec<SubmissionView>, String> {
                    v.get(key)
                        .and_then(Json::as_arr)
                        .map(|items| items.iter().filter_map(SubmissionView::from_json).collect())
                        .ok_or_else(|| format!("missing field {key:?}"))
                };
                Ok(Event::Status {
                    running: views("running")?,
                    queued: views("queued")?,
                })
            }
            "ack" => Ok(Event::Ack {
                cmd: s("cmd")?,
                id: v.get("id").and_then(Json::as_str).map(str::to_string),
            }),
            other => Err(format!("unknown event {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Server configuration.
// ---------------------------------------------------------------------------

/// The daemon's knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The listening socket path (conventionally `results/daemon.sock`).
    pub socket: PathBuf,
    /// Append-only event log (`results/daemon/events.jsonl`).
    pub events_log: PathBuf,
    /// Root for per-batch fabric directories (tombstones live here for
    /// the duration of one batch only, so a cancelled job's tombstone
    /// never poisons a later submission).
    pub fabric_root: PathBuf,
    /// Max queued submissions; beyond this, `submit` is rejected.
    pub max_queue: usize,
    /// Target cap on unique in-flight jobs per scheduling batch. A
    /// batch always admits at least one submission, even one larger
    /// than the cap.
    pub max_inflight: usize,
    /// Lease heartbeat TTL for the batch executor (see [`FabricConfig`]).
    pub lease_ttl: f64,
    /// Straggler threshold for the batch executor.
    pub steal_after: Option<f64>,
    /// Suppress per-job log lines on stderr.
    pub quiet: bool,
}

impl DaemonConfig {
    /// The standard layout under `results_dir`.
    pub fn for_results_dir(results_dir: &std::path::Path) -> Self {
        DaemonConfig {
            socket: results_dir.join("daemon.sock"),
            events_log: results_dir.join("daemon").join("events.jsonl"),
            fabric_root: results_dir.join("daemon").join("fabric"),
            max_queue: 16,
            max_inflight: 4096,
            lease_ttl: 2.0,
            steal_after: None,
            quiet: false,
        }
    }
}

/// The planner callback: expands one submission into its declared job
/// list (the binary supplies this — the figure registry lives in
/// `poise-bench`, above this crate). Must be deterministic: the client
/// re-expands the same plan locally to render from the warmed cache.
pub type Planner = dyn Fn(&SubmitRequest) -> Result<Vec<SimJob>, String> + Send + Sync;

// ---------------------------------------------------------------------------
// Server internals.
// ---------------------------------------------------------------------------

/// A queued submission (jobs expanded, not yet scheduled).
struct Queued {
    id: u64,
    client: String,
    priority: i64,
    arrival: u64,
    jobs: Vec<SimJob>,
    hashes: HashSet<String>,
    total: usize,
    stream: Option<UnixStream>,
}

/// One running submission's channel state (owned by the router while
/// its batch executes).
struct Channel {
    client: String,
    priority: i64,
    stream: Option<UnixStream>,
    hashes: HashSet<String>,
    total: usize,
    /// Terminal spec hashes seen (each resolves exactly once).
    done: HashSet<String>,
    hits: u64,
    executed: u64,
    failed: u64,
    cancelled_jobs: u64,
    /// The client withdrew this submission.
    withdrawn: bool,
}

/// Event routing state for the running batch: which submissions
/// subscribe to which spec hashes, and the live-subscriber counts the
/// engine's veto gate consults.
#[derive(Default)]
struct RouterState {
    subscribers: HashMap<String, Vec<u64>>,
    live: HashMap<String, usize>,
    channels: HashMap<u64, Channel>,
}

/// The event router: fans engine progress events out to subscribed
/// client streams and the append-only event log.
struct Router {
    state: Mutex<RouterState>,
    log: Mutex<Option<std::fs::File>>,
    seq: AtomicU64,
    started: Instant,
}

impl Router {
    /// Append one event line to `events.jsonl`, wrapped with a sequence
    /// number and daemon-relative timestamp (volatile fields stay out
    /// of the client wire format, which `protocol_golden` pins).
    fn log_event(&self, event: &Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let t = (self.started.elapsed().as_secs_f64() * 1000.0).round() / 1000.0;
        let mut fields = vec![
            ("seq".to_string(), Json::Num(seq as f64)),
            ("t".to_string(), Json::Num(t)),
        ];
        if let Json::Obj(event_fields) = event.to_json() {
            fields.extend(event_fields);
        }
        let line = Json::Obj(fields).render();
        if let Some(f) = self.log.lock().expect("event log").as_mut() {
            let _ = writeln!(f, "{line}");
        }
    }

    /// Write one event to a client stream; a dead stream is dropped
    /// (the submission keeps running — client death must not cancel
    /// shared work).
    fn send(stream: &mut Option<UnixStream>, event: &Event) {
        if let Some(s) = stream {
            if writeln!(s, "{}", event.render()).is_err() {
                *stream = None;
            }
        }
    }

    /// Route one event to a submission's stream and the log.
    fn emit_to(&self, channel: &mut Channel, event: &Event) {
        Router::send(&mut channel.stream, event);
        self.log_event(event);
    }
}

impl ProgressSink for Router {
    fn job_event(&self, event: &JobEvent) {
        let mut state = self.state.lock().expect("router state");
        let Some(subs) = state.subscribers.get(&event.spec_hash).cloned() else {
            return;
        };
        for id in subs {
            let Some(channel) = state.channels.get_mut(&id) else {
                continue;
            };
            let ev = Event::Job {
                id: sub_id(id),
                label: event.label.clone(),
                spec_hash: event.spec_hash.clone(),
                status: event.status,
                attempts: event.attempts as u64,
                wall: event.wall,
                error: event.error.clone(),
            };
            self.emit_to(channel, &ev);
            if event.status.is_terminal() && channel.done.insert(event.spec_hash.clone()) {
                match event.status {
                    JobStatus::Hit => channel.hits += 1,
                    JobStatus::Done | JobStatus::Recovered => channel.executed += 1,
                    JobStatus::Cancelled => channel.cancelled_jobs += 1,
                    _ => channel.failed += 1,
                }
                let (done, total) = (channel.done.len() as u64, channel.total as u64);
                let ev = Event::Progress {
                    id: sub_id(id),
                    done,
                    total,
                    percent: (done * 100).checked_div(total).unwrap_or(100),
                };
                self.emit_to(channel, &ev);
            }
        }
    }
}

/// Submission ids as the protocol spells them (`s1`, `s2`, …).
fn sub_id(n: u64) -> String {
    format!("s{n}")
}

/// Scheduler queue + shutdown state.
#[derive(Default)]
struct SchedState {
    queue: Vec<Queued>,
    next_id: u64,
    arrivals: u64,
    /// `Some(now)` once a shutdown was requested.
    shutdown: Option<bool>,
}

/// The daemon: shared state between the accept loop, per-connection
/// threads and the scheduler thread.
pub struct Daemon {
    cfg: DaemonConfig,
    engine: Engine,
    planner: Box<Planner>,
    sched: Mutex<SchedState>,
    wake: Condvar,
    router: Arc<Router>,
}

impl Daemon {
    /// Serve until a `shutdown` request completes. Returns the number
    /// of submissions completed. `engine.progress` and `engine.veto`
    /// are installed by the daemon; any prior values are replaced.
    pub fn serve(
        mut engine: Engine,
        planner: Box<Planner>,
        cfg: DaemonConfig,
    ) -> Result<u64, String> {
        // Startup hygiene: a daemon restarted after SIGKILL must not
        // strand the previous instance's claims or torn writes. The
        // daemon is the store's front door, so at startup no worker of
        // ours can be alive.
        let reaped = engine.cache().reap_stale_leases(0.0);
        let swept = engine.cache().sweep_tmp();
        if (reaped > 0 || swept > 0) && !cfg.quiet {
            eprintln!(
                "[poised] startup: reaped {reaped} stale lease(s), removed {swept} tmp orphan(s)"
            );
        }

        if let Some(parent) = cfg.events_log.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&cfg.events_log)
            .map_err(|e| format!("cannot open {}: {e}", cfg.events_log.display()))?;

        let router = Arc::new(Router {
            state: Mutex::default(),
            log: Mutex::new(Some(log)),
            seq: AtomicU64::new(0),
            started: Instant::now(),
        });
        // The engine streams lifecycle events through the router and
        // consults it before every attempt: a spec hash whose live
        // subscriber count dropped to zero is vetoed (cancelled).
        engine.progress = Some(router.clone() as Arc<dyn ProgressSink>);
        let veto_router = router.clone();
        engine.veto = Some(Arc::new(move |hash: &str| {
            veto_router
                .state
                .lock()
                .map(|s| s.live.get(hash) == Some(&0))
                .unwrap_or(false)
        }));

        let listener = bind_socket(&cfg.socket)?;
        if !cfg.quiet {
            eprintln!("[poised] listening on {}", cfg.socket.display());
        }

        let daemon = Arc::new(Daemon {
            cfg,
            engine,
            planner,
            sched: Mutex::default(),
            wake: Condvar::new(),
            router,
        });

        // The scheduler: batches queued submissions onto the fabric.
        let scheduler = {
            let d = daemon.clone();
            std::thread::spawn(move || d.scheduler_loop())
        };

        // The accept loop: one thread per connection. A shutdown
        // request unblocks `accept` with a dummy connection.
        let mut conns = Vec::new();
        for stream in listener.incoming() {
            if daemon.sched.lock().expect("sched state").shutdown.is_some() {
                break;
            }
            match stream {
                Ok(s) => {
                    // A short read timeout lets a handler blocked on an
                    // idle client wake up and observe shutdown — without
                    // it, joining connection threads below would wait on
                    // clients that never close their stream.
                    let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                    let d = daemon.clone();
                    conns.push(std::thread::spawn(move || d.handle_connection(s)));
                }
                Err(e) => {
                    if !daemon.cfg.quiet {
                        eprintln!("[poised] accept: {e}");
                    }
                }
            }
        }
        for c in conns {
            let _ = c.join();
        }
        let completed: u64 = scheduler.join().unwrap_or_default();

        // Shutdown hygiene: mirror startup (the batch executor has
        // exited, so any surviving lease is ours and orphaned).
        let reaped = daemon.engine.cache().reap_stale_leases(0.0);
        let swept = daemon.engine.cache().sweep_tmp();
        let _ = std::fs::remove_dir_all(&daemon.cfg.fabric_root);
        let _ = std::fs::remove_file(&daemon.cfg.socket);
        if !daemon.cfg.quiet {
            eprintln!(
                "[poised] shutdown: {completed} submission(s) completed; \
                 reaped {reaped} lease(s), removed {swept} tmp orphan(s)"
            );
        }
        Ok(completed)
    }

    // -- connection handling ------------------------------------------------

    fn handle_connection(&self, stream: UnixStream) {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut write_half = Some(stream);
        let mut line = String::new();
        loop {
            line.clear();
            // Inner loop: a read timeout is not an error — it is the
            // shutdown poll. Bytes of a partial line read before the
            // timeout stay appended to `line`, so resuming the read
            // continues the same line.
            loop {
                match reader.read_line(&mut line) {
                    Ok(0) => return, // EOF: client hung up.
                    Ok(_) => break,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock
                                | std::io::ErrorKind::TimedOut
                                | std::io::ErrorKind::Interrupted
                        ) =>
                    {
                        if self.sched.lock().expect("sched state").shutdown.is_some() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match Request::parse_line(trimmed) {
                Ok(req) => {
                    if !self.handle_request(req, &mut write_half) {
                        return;
                    }
                }
                Err(error) => {
                    // Malformed or truncated lines get a structured
                    // error reply — never a panic or a silent drop.
                    Router::send(&mut write_half, &Event::Error { error });
                }
            }
            if write_half.is_none() {
                return;
            }
        }
    }

    /// Dispatch one request. Returns `false` when the connection's
    /// write half was handed to a submission (the connection thread
    /// keeps reading for follow-up commands in all other cases).
    fn handle_request(&self, req: Request, stream: &mut Option<UnixStream>) -> bool {
        match req {
            Request::Submit(submit) => self.handle_submit(submit, stream),
            Request::Status => {
                let ev = self.status_event();
                Router::send(stream, &ev);
                true
            }
            Request::Cancel { id } => {
                let ev = self.handle_cancel(&id);
                Router::send(stream, &ev);
                true
            }
            Request::Shutdown { now } => {
                self.handle_shutdown(now);
                Router::send(
                    stream,
                    &Event::Ack {
                        cmd: "shutdown".to_string(),
                        id: None,
                    },
                );
                true
            }
        }
    }

    fn handle_submit(&self, submit: SubmitRequest, stream: &mut Option<UnixStream>) -> bool {
        // Plan outside the locks: expansion simulates nothing but may
        // parse overlays and walk the registry.
        let jobs = match (self.planner)(&submit) {
            Ok(jobs) => jobs,
            Err(error) => {
                Router::send(stream, &Event::Error { error });
                return true;
            }
        };
        let closure = graph_closure(&jobs);
        let hashes: HashSet<String> = closure.iter().map(|(h, _)| h.clone()).collect();
        let total = closure.len();

        let mut sched = self.sched.lock().expect("sched state");
        if sched.shutdown.is_some() {
            let ev = Event::Rejected {
                client: submit.client.clone(),
                reason: "daemon is shutting down".to_string(),
            };
            self.router.log_event(&ev);
            Router::send(stream, &ev);
            return true;
        }
        if sched.queue.len() >= self.cfg.max_queue {
            let ev = Event::Rejected {
                client: submit.client.clone(),
                reason: format!("queue full ({} queued)", sched.queue.len()),
            };
            self.router.log_event(&ev);
            Router::send(stream, &ev);
            return true;
        }
        // Cross-client coalescing: overlap with every queued and
        // running submission's closure. (Lock order: sched before
        // router, everywhere.)
        let shared = {
            let router = self.router.state.lock().expect("router state");
            hashes
                .iter()
                .filter(|h| {
                    router.subscribers.contains_key(*h)
                        || sched.queue.iter().any(|q| q.hashes.contains(*h))
                })
                .count() as u64
        };
        sched.next_id += 1;
        sched.arrivals += 1;
        let id = sched.next_id;
        let arrival = sched.arrivals;
        let ev = Event::Admitted {
            id: sub_id(id),
            client: submit.client.clone(),
            jobs: total as u64,
            cross_client_shared: shared,
            queue_depth: sched.queue.len() as u64 + 1,
        };
        self.router.log_event(&ev);
        Router::send(stream, &ev);
        if !self.cfg.quiet {
            eprintln!(
                "[poised] {} admitted from {:?}: {total} job(s), cross_client_shared={shared}",
                sub_id(id),
                submit.client
            );
        }
        sched.queue.push(Queued {
            id,
            client: submit.client,
            priority: submit.priority,
            arrival,
            jobs,
            hashes,
            total,
            stream: stream.take(),
        });
        self.wake.notify_all();
        // The stream now belongs to the submission; stop reading from
        // this connection (one submission per connection, like one
        // plan per `run_all` invocation).
        false
    }

    fn handle_cancel(&self, id: &str) -> Event {
        let Some(num) = id.strip_prefix('s').and_then(|n| n.parse::<u64>().ok()) else {
            return Event::Error {
                error: format!("malformed submission id {id:?}"),
            };
        };
        let mut sched = self.sched.lock().expect("sched state");
        // Queued: withdraw before it ever runs.
        if let Some(pos) = sched.queue.iter().position(|q| q.id == num) {
            let mut q = sched.queue.remove(pos);
            drop(sched);
            let ev = Event::Complete {
                id: sub_id(num),
                outcome: "cancelled".to_string(),
                executed: 0,
                cache_hits: 0,
                failed: 0,
                cancelled: q.total as u64,
            };
            self.router.log_event(&ev);
            Router::send(&mut q.stream, &ev);
            return Event::Ack {
                cmd: "cancel".to_string(),
                id: Some(sub_id(num)),
            };
        }
        drop(sched);
        // Running: withdraw its subscriptions; jobs with no live
        // subscriber left are vetoed, and any executing attempt is
        // interrupted at its next simulator barrier.
        let mut router = self.router.state.lock().expect("router state");
        if let Some(channel) = router.channels.get_mut(&num) {
            if channel.withdrawn {
                return Event::Ack {
                    cmd: "cancel".to_string(),
                    id: Some(sub_id(num)),
                };
            }
            channel.withdrawn = true;
            let hashes: Vec<String> = channel.hashes.iter().cloned().collect();
            let mut orphaned = Vec::new();
            for h in hashes {
                if let Some(n) = router.live.get_mut(&h) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        orphaned.push(h);
                    }
                }
            }
            drop(router);
            for h in &orphaned {
                self.engine.cancel_spec(h);
            }
            if !self.cfg.quiet {
                eprintln!(
                    "[poised] {} cancelled; {} job(s) orphaned and vetoed",
                    sub_id(num),
                    orphaned.len()
                );
            }
            return Event::Ack {
                cmd: "cancel".to_string(),
                id: Some(sub_id(num)),
            };
        }
        Event::Error {
            error: format!("no queued or running submission {id:?}"),
        }
    }

    fn handle_shutdown(&self, now: bool) {
        let ids: Vec<u64> = {
            let mut sched = self.sched.lock().expect("sched state");
            sched.shutdown = Some(now);
            self.wake.notify_all();
            if now {
                // Cancel the queue immediately; the scheduler never
                // sees these again.
                let drained: Vec<Queued> = sched.queue.drain(..).collect();
                drop(sched);
                for mut q in drained {
                    let ev = Event::Complete {
                        id: sub_id(q.id),
                        outcome: "cancelled".to_string(),
                        executed: 0,
                        cache_hits: 0,
                        failed: 0,
                        cancelled: q.total as u64,
                    };
                    self.router.log_event(&ev);
                    Router::send(&mut q.stream, &ev);
                }
                let router = self.router.state.lock().expect("router state");
                router.channels.keys().copied().collect()
            } else {
                Vec::new()
            }
        };
        for id in ids {
            let _ = self.handle_cancel(&sub_id(id));
        }
        // Unblock the accept loop.
        let _ = UnixStream::connect(&self.cfg.socket);
    }

    fn status_event(&self) -> Event {
        let sched = self.sched.lock().expect("sched state");
        let router = self.router.state.lock().expect("router state");
        let queued = sched
            .queue
            .iter()
            .map(|q| SubmissionView {
                id: sub_id(q.id),
                client: q.client.clone(),
                priority: q.priority,
                state: "queued".to_string(),
                total: q.total as u64,
                done: 0,
            })
            .collect();
        let mut running: Vec<SubmissionView> = router
            .channels
            .iter()
            .map(|(id, c)| SubmissionView {
                id: sub_id(*id),
                client: c.client.clone(),
                priority: c.priority,
                state: if c.withdrawn { "cancelled" } else { "running" }.to_string(),
                total: c.total as u64,
                done: c.done.len() as u64,
            })
            .collect();
        running.sort_by(|a, b| a.id.cmp(&b.id));
        Event::Status { running, queued }
    }

    // -- the scheduler ------------------------------------------------------

    /// Batch queued submissions onto the lease fabric until shutdown.
    /// Returns the number of submissions completed.
    fn scheduler_loop(&self) -> u64 {
        let mut completed = 0u64;
        let mut batch_no = 0u64;
        loop {
            let batch = {
                let mut sched = self.sched.lock().expect("sched state");
                loop {
                    match (sched.queue.is_empty(), sched.shutdown) {
                        (false, _) => break,
                        (true, Some(_)) => return completed,
                        (true, None) => {
                            sched = self.wake.wait(sched).expect("sched state");
                        }
                    }
                }
                self.select_batch(&mut sched)
            };
            batch_no += 1;
            completed += self.run_batch(batch, batch_no);
        }
    }

    /// Admission: pop queued submissions in `(priority desc, arrival
    /// asc)` order while the union of their closures fits the
    /// in-flight cap (always at least one).
    fn select_batch(&self, sched: &mut SchedState) -> Vec<Queued> {
        let mut order: Vec<usize> = (0..sched.queue.len()).collect();
        order.sort_by_key(|&i| (-sched.queue[i].priority, sched.queue[i].arrival));
        let mut union: HashSet<String> = HashSet::new();
        let mut picked: Vec<u64> = Vec::new();
        for &i in &order {
            let q = &sched.queue[i];
            let grown: HashSet<String> = union.union(&q.hashes).cloned().collect();
            if !picked.is_empty() && grown.len() > self.cfg.max_inflight {
                continue;
            }
            union = grown;
            picked.push(q.id);
        }
        let mut batch: Vec<Queued> = Vec::new();
        for id in picked {
            let pos = sched
                .queue
                .iter()
                .position(|q| q.id == id)
                .expect("picked ids are queued");
            batch.push(sched.queue.remove(pos));
        }
        // Priority then arrival, so the round-robin interleave below
        // gives the highest-priority client the first slot of each
        // turn.
        batch.sort_by_key(|q| (-q.priority, q.arrival));
        batch
    }

    /// Execute one batch on the lease fabric and complete its
    /// submissions. Returns how many completed.
    fn run_batch(&self, batch: Vec<Queued>, batch_no: u64) -> u64 {
        // Round-robin wave interleaving: merge the declared job lists
        // one job per submission per turn. The engine re-sorts by
        // dependency wave (stably), so within each wave the clients'
        // jobs stay interleaved — per-client fairness inside the
        // parallel execution order.
        let mut merged: Vec<SimJob> = Vec::new();
        {
            let mut cursors: Vec<std::slice::Iter<SimJob>> =
                batch.iter().map(|q| q.jobs.iter()).collect();
            let mut progressed = true;
            while progressed {
                progressed = false;
                for cur in &mut cursors {
                    if let Some(job) = cur.next() {
                        merged.push(job.clone());
                        progressed = true;
                    }
                }
            }
        }

        // Install the batch in the router: subscriptions, live counts,
        // channels.
        {
            let mut router = self.router.state.lock().expect("router state");
            for q in &batch {
                for h in &q.hashes {
                    router.subscribers.entry(h.clone()).or_default().push(q.id);
                    *router.live.entry(h.clone()).or_insert(0) += 1;
                }
            }
            for q in batch {
                router.channels.insert(
                    q.id,
                    Channel {
                        client: q.client,
                        priority: q.priority,
                        stream: q.stream,
                        hashes: q.hashes,
                        total: q.total,
                        done: HashSet::new(),
                        hits: 0,
                        executed: 0,
                        failed: 0,
                        cancelled_jobs: 0,
                        withdrawn: false,
                    },
                );
            }
        }
        // A `shutdown now` that raced the batch install: veto
        // everything before paying for any simulation.
        if self.sched.lock().expect("sched state").shutdown == Some(true) {
            let ids: Vec<u64> = {
                let router = self.router.state.lock().expect("router state");
                router.channels.keys().copied().collect()
            };
            for id in ids {
                let _ = self.handle_cancel(&sub_id(id));
            }
        }

        if !self.cfg.quiet {
            let n = {
                let router = self.router.state.lock().expect("router state");
                router.channels.len()
            };
            eprintln!(
                "[poised] batch {batch_no}: {n} submission(s), {} declared job(s)",
                merged.len()
            );
        }

        // Execute on the lease fabric: leases land in the shared
        // cache's leases/ directory, so standalone fleets on the same
        // store cooperate instead of colliding, and `--status` can see
        // in-flight work even headless. The per-batch fabric dir keeps
        // tombstones scoped to this batch.
        let fabric_dir = self.cfg.fabric_root.join(format!("batch-{batch_no}"));
        let cfg = FabricConfig {
            fabric_dir: fabric_dir.clone(),
            worker_id: "poised".to_string(),
            lease_ttl: self.cfg.lease_ttl,
            steal_after: self.cfg.steal_after,
            poll_ms: 25,
            allow_kills: false,
            claim_cap: crate::parallel::host_parallelism(),
        };
        let (store, report) = crate::fabric::run_worker(&self.engine, &merged, &cfg);
        let _ = std::fs::remove_dir_all(&fabric_dir);
        if !self.cfg.quiet {
            eprintln!("[poised] batch {batch_no}: {}", report.summary_line());
        }
        let _ = store; // results live in the shared cache

        // Complete every channel of this batch.
        let mut router = self.router.state.lock().expect("router state");
        let ids: Vec<u64> = router.channels.keys().copied().collect();
        let mut completed = 0u64;
        for id in ids {
            let Some(mut channel) = router.channels.remove(&id) else {
                continue;
            };
            for h in &channel.hashes {
                if let Some(subs) = router.subscribers.get_mut(h) {
                    subs.retain(|s| *s != id);
                    if subs.is_empty() {
                        router.subscribers.remove(h);
                        router.live.remove(h);
                    }
                }
            }
            let outcome = if channel.withdrawn {
                "cancelled"
            } else if channel.failed > 0 || channel.cancelled_jobs > 0 {
                "failed"
            } else {
                "pass"
            };
            let ev = Event::Complete {
                id: sub_id(id),
                outcome: outcome.to_string(),
                executed: channel.executed,
                cache_hits: channel.hits,
                failed: channel.failed,
                cancelled: channel.cancelled_jobs,
            };
            self.router.log_event(&ev);
            Router::send(&mut channel.stream, &ev);
            completed += 1;
        }
        completed
    }
}

/// Bind the listening socket, replacing a stale socket file (a daemon
/// killed with SIGKILL leaves one behind) but refusing to displace a
/// live daemon.
fn bind_socket(path: &std::path::Path) -> Result<UnixListener, String> {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(format!(
                    "a daemon is already listening on {}",
                    path.display()
                ));
            }
            std::fs::remove_file(path)
                .map_err(|e| format!("cannot remove stale socket {}: {e}", path.display()))?;
            UnixListener::bind(path).map_err(|e| format!("cannot bind {}: {e}", path.display()))
        }
        Err(e) => Err(format!("cannot bind {}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_and_unknown_fields() {
        let req = Request::Submit(SubmitRequest {
            client: "alice".into(),
            priority: 5,
            set: vec!["sms=2".into()],
            sweep: vec!["run_cycles=10000,20000".into()],
            only: Some(vec!["fig07".into()]),
        });
        let parsed = Request::parse_line(&req.render()).unwrap();
        assert_eq!(parsed, req);
        // Unknown fields are ignored forward-compatibly.
        let line = r#"{"v":1,"cmd":"status","future_knob":{"nested":[1,2]}}"#;
        assert_eq!(Request::parse_line(line).unwrap(), Request::Status);
    }

    #[test]
    fn malformed_requests_error_not_panic() {
        for bad in [
            "",
            "{",
            "not json",
            "[1,2,3]",
            "42",
            r#"{"cmd":"submit"}"#,                   // missing version
            r#"{"v":1}"#,                            // missing cmd
            r#"{"v":0,"cmd":"status"}"#,             // bad version
            r#"{"v":1,"cmd":"warp_drive"}"#,         // unknown cmd
            r#"{"v":1,"cmd":"cancel"}"#,             // missing id
            r#"{"v":1,"cmd":"submit","set":"sms"}"#, // set not an array
            r#"{"v":1,"cmd":"status"} trailing"#,    // trailing garbage
        ] {
            assert!(Request::parse_line(bad).is_err(), "line {bad:?} must error");
        }
    }

    #[test]
    fn event_roundtrip() {
        let events = vec![
            Event::Error {
                error: "nope".into(),
            },
            Event::Admitted {
                id: "s1".into(),
                client: "alice".into(),
                jobs: 12,
                cross_client_shared: 7,
                queue_depth: 2,
            },
            Event::Rejected {
                client: "bob".into(),
                reason: "queue full (16 queued)".into(),
            },
            Event::Job {
                id: "s1".into(),
                label: "run jk1 gto".into(),
                spec_hash: "abc123".into(),
                status: JobStatus::Recovered,
                attempts: 2,
                wall: 1.5,
                error: None,
            },
            Event::Progress {
                id: "s1".into(),
                done: 3,
                total: 12,
                percent: 25,
            },
            Event::Complete {
                id: "s1".into(),
                outcome: "pass".into(),
                executed: 5,
                cache_hits: 7,
                failed: 0,
                cancelled: 0,
            },
            Event::Status {
                running: vec![SubmissionView {
                    id: "s1".into(),
                    client: "alice".into(),
                    priority: 0,
                    state: "running".into(),
                    total: 12,
                    done: 3,
                }],
                queued: vec![],
            },
            Event::Ack {
                cmd: "cancel".into(),
                id: Some("s2".into()),
            },
        ];
        for ev in events {
            let parsed = Event::parse_line(&ev.render()).unwrap();
            assert_eq!(parsed, ev, "event must round-trip");
        }
    }

    #[test]
    fn event_parse_ignores_log_wrapper_fields() {
        // events.jsonl lines carry seq/t on top of the wire fields; a
        // client reconstructing history parses them with the same code.
        let line = r#"{"seq":9,"t":1.25,"v":1,"event":"progress","id":"s1","done":1,"total":4,"percent":25}"#;
        let ev = Event::parse_line(line).unwrap();
        assert_eq!(
            ev,
            Event::Progress {
                id: "s1".into(),
                done: 1,
                total: 4,
                percent: 25
            }
        );
    }
}
