//! The end-to-end offline training pipeline (paper Section V-C/V-D):
//! profile each training kernel over the {N, p} grid, pick the
//! best-*scored* tuple (Eq. 12), scale it to scheduler capacity, sample
//! the Table II features at the two reference points, filter by the
//! Table IV thresholds, and fit the two Negative Binomial regressions.

use crate::experiment::Setup;
use crate::params::PoiseParams;
use crate::profiler::{profile_grid, run_tuple, GridSpec, ProfileWindow};
use gpu_sim::{GpuConfig, KernelSource, WarpTuple, WindowSample};
use poise_ml::{scoring, FeatureVector, TrainedModel, TrainingSample, TrainingThresholds};
use workloads::{training_suite, Workload};

/// Collect one training sample from a kernel: profile, score, sample
/// features at the two reference points.
pub fn collect_sample(
    spec: &Workload,
    cfg: &GpuConfig,
    grid: &GridSpec,
    window: ProfileWindow,
    params: &PoiseParams,
) -> TrainingSample {
    collect_sample_scored(spec, cfg, grid, window, &params.scoring)
}

/// [`collect_sample`] with the scoring weights alone — the only
/// [`PoiseParams`] field sampling reads. The job engine keys sample
/// caches on exactly this argument list, so parameter studies that leave
/// the scoring untouched (e.g. the Fig. 11 stride sweep) share samples.
pub fn collect_sample_scored(
    spec: &Workload,
    cfg: &GpuConfig,
    grid: &GridSpec,
    window: ProfileWindow,
    scoring: &poise_ml::ScoringWeights,
) -> TrainingSample {
    let max_warps = spec.warps_per_scheduler().min(cfg.max_warps_per_scheduler);
    let profile = profile_grid(spec, cfg, grid, window);

    let (target, _) = profile
        .best_scored(scoring)
        .unwrap_or((WarpTuple::max(max_warps), 1.0));
    let best_speedup = profile.best_performance().map(|(_, s)| s).unwrap_or(1.0);
    let scaled = scoring::scale_tuple(target, max_warps, cfg.max_warps_per_scheduler);

    // Feature sampling at the same two reference points the HIE uses.
    let base = run_tuple(spec, cfg, WarpTuple::max(max_warps), window);
    let refp = run_tuple(spec, cfg, WarpTuple { n: 1, p: 1 }, window);
    let base_s = WindowSample::from_counters(&base.window);
    let ref_s = WindowSample::from_counters(&refp.window);

    TrainingSample {
        kernel: spec.name().to_string(),
        features: FeatureVector::from_samples(&base_s, &ref_s),
        target: scaled,
        best_speedup,
        baseline_cycles: window.warmup + window.measure,
        ref_hit_rate: ref_s.hit_rate,
    }
}

/// Collect samples for a set of kernels.
pub fn collect_samples(
    kernels: &[Workload],
    cfg: &GpuConfig,
    grid: &GridSpec,
    window: ProfileWindow,
    params: &PoiseParams,
) -> Vec<TrainingSample> {
    kernels
        .iter()
        .map(|k| collect_sample(k, cfg, grid, window, params))
        .collect()
}

/// Train the default model on the training suite (gco, pvr, ccl), using
/// the setup's kernel cap and windows. This is the one-time GPU-vendor
/// step of the paper; evaluation benchmarks are never seen here.
pub fn train_default_model(setup: &Setup) -> TrainedModel {
    let suite = training_suite();
    let kernels: Vec<Workload> = suite
        .iter()
        .flat_map(|b| b.capped(setup.train_cap_per_benchmark).kernels)
        .collect();
    train_on_kernels(&kernels, setup, &[])
}

/// Train on explicit kernels, optionally dropping features (Fig. 13).
pub fn train_on_kernels(
    kernels: &[Workload],
    setup: &Setup,
    drop_features: &[usize],
) -> TrainedModel {
    let samples = collect_samples(
        kernels,
        &setup.cfg,
        &setup.train_grid,
        setup.profile_window,
        &setup.params,
    );
    fit_samples(&samples, setup.profile_window, drop_features)
}

/// Fit a model on already-collected samples, with the admission
/// thresholds interpreted against the profiling window (and relaxed when
/// the population is too small for the paper's defaults). Shared by
/// [`train_on_kernels`] and the job engine, which caches sample
/// collection and fitting separately.
pub fn fit_samples(
    samples: &[TrainingSample],
    window: ProfileWindow,
    drop_features: &[usize],
) -> TrainedModel {
    let thresholds = TrainingThresholds {
        // The profiling windows are fixed-length; the cycle threshold is
        // interpreted against the window length.
        min_cycles: window.measure.min(TrainingThresholds::default().min_cycles),
        ..TrainingThresholds::default()
    };
    match TrainedModel::fit(samples, &thresholds, drop_features) {
        Ok(m) => m,
        // Small training populations can fall below the admission
        // thresholds (which assume the paper's 277-kernel set); relax them
        // rather than failing, so capped runs still produce a model.
        Err(_) => {
            let relaxed = TrainingThresholds {
                min_speedup: 0.0,
                min_cycles: 0,
                min_ref_hit_rate: -1.0,
            };
            TrainedModel::fit(samples, &relaxed, drop_features)
                .expect("relaxed training fit must succeed")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{AccessMix, KernelSpec};

    fn tiny_setup() -> Setup {
        Setup::for_tests()
    }

    #[test]
    fn collect_sample_produces_valid_training_row() {
        let setup = tiny_setup();
        let spec: Workload = KernelSpec::steady("tr", AccessMix::memory_sensitive(), 11).into();
        let s = collect_sample(
            &spec,
            &setup.cfg,
            &GridSpec::diagonal(8),
            setup.profile_window,
            &setup.params,
        );
        assert!(s.features.as_slice().iter().all(|v| v.is_finite()));
        assert!(s.target.n >= 1 && s.target.p >= 1);
        assert!(s.best_speedup > 0.0);
    }

    #[test]
    fn training_on_diverse_kernels_fits() {
        let setup = tiny_setup();
        let kernels: Vec<Workload> = (0..10)
            .map(|i| {
                let mut mix = AccessMix::memory_sensitive();
                mix.hot_lines = 8 + 4 * i;
                mix.hot_frac = 0.4 + 0.05 * i as f64;
                KernelSpec::steady(format!("k{i}"), mix, i as u64).into()
            })
            .collect();
        let model = train_on_kernels(&kernels, &setup, &[]);
        assert!(model.samples_used >= poise_ml::N_FEATURES);
        assert!(model.alpha.iter().all(|w| w.is_finite()));
        assert!(model.beta.iter().all(|w| w.is_finite()));
    }
}
