//! The unified experiment engine: typed simulation jobs, a deduplicating
//! in-process work queue, and content-addressed result caching.
//!
//! The paper's ~20 figures and tables all draw from the same pool of
//! simulation runs — `(kernel × scheme × machine configuration)` products,
//! offline {N, p} profiles, training samples and model fits. Instead of
//! each figure binary re-simulating its slice, a figure *declares* its
//! jobs as [`SimJob`] values and the [`Engine`] executes the deduplicated
//! set once over a shared work queue (built on
//! [`parallel_map`](crate::parallel::parallel_map)), answering repeats
//! from the content-addressed cache in `results/cache/` (see
//! [`crate::cache`]).
//!
//! ## Job kinds and dependencies
//!
//! | job | inputs (cache key) | output |
//! |-----|--------------------|--------|
//! | [`SimJob::Profile`] | kernel, cfg, grid, window | [`SpeedupGrid`] |
//! | [`SimJob::Pbest`] | kernel, cfg, window | speedup scalar |
//! | [`SimJob::TupleRun`] | kernel, cfg, tuple, window | windowed counters |
//! | [`SimJob::Sample`] | kernel, cfg, grid, window, scoring | training sample |
//! | [`SimJob::Train`] | kernels, cfg, grid, window, scoring, dropped features; **sample outputs** | model weights |
//! | [`SimJob::Run`] | kernel, scheme, cfg, cycles, controller params; **model weights** / **profile tuples** | counters + energy + epoch log |
//!
//! Jobs reference their dependencies *by spec*: a Poise run embeds the
//! [`ModelSpec`] it is to be driven by, and the engine resolves the
//! corresponding [`SimJob::Train`] first (training in turn depends on one
//! [`SimJob::Sample`] per training kernel, so the expensive profiling
//! passes are shared between e.g. the Fig. 13 model variants). The cache
//! key of a job hashes its own spec **plus digests of the dependency
//! outputs it consumes** — for a Poise run the trained weights, for an
//! SWL/PCAL/Static-Best run only the two tuples derived from the profile
//! — so editing any input (a kernel spec, a controller parameter, the
//! machine configuration, the training population) invalidates exactly
//! the affected runs, and noise that does not reach a job's inputs (e.g.
//! a profile change that leaves the chosen tuples intact) invalidates
//! nothing.
//!
//! ## Execution model
//!
//! [`Engine::run`] expands the requested jobs to their transitive
//! dependency closure, deduplicates by canonical spec, and executes in
//! three waves (leaf jobs → model fits → scheme runs), fanning each wave
//! across the host's cores. Each job runs under `catch_unwind`, so one
//! panicking simulation marks its dependants failed without tearing down
//! the run. Progress is reported per job completion; cache hit/miss/store
//! counts are aggregated in the [`RunReport`].
//!
//! Executed results are canonicalised through their own serialisation
//! before being returned, so a cold run and a warm (all-hits) run hand
//! the renderer bit-identical values by construction.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::{fmt_f64, parse_f64, sha256_hex, Cache, FsckReport, Lookup};
use crate::experiment::{
    run_kernel_configured, run_kernel_segmented, run_prefix_blob, KernelRun, PrefixBlob,
    PrefixStore, ProfileTuples, Scheme, Setup,
};
use crate::faults::{FaultKind, FaultPlan};
use crate::params::PoiseParams;
use crate::policies::{static_best_from_grid, swl_tuple_from_grid};
use crate::profiler::{pbest, profile_grid, run_tuple, GridSpec, ProfileWindow, SteadyState};
use crate::train::{collect_sample_scored, fit_samples};
use gpu_sim::KernelSource;
use gpu_sim::{CancelToken, Counters, EnergyBreakdown, GpuConfig, WarpTuple};
use poise_ml::{ScoringWeights, SpeedupGrid, TrainedModel, TrainingSample, N_FEATURES};
use workloads::{training_suite, Workload};

/// Salt mixed into every cache key. The cache hashes job *inputs*, not
/// simulator code — bump this when a simulator/serialisation change
/// alters what existing specs would produce, to deterministically
/// invalidate every prior entry (a blanket alternative to
/// `POISE_RERUN=1`, which only refreshes the specs of that one run).
///
/// v2: spec texts moved from `derive(Debug)` formatting to the explicit
/// versioned renderings in [`spec_render`].
pub const CACHE_VERSION: u32 = 2;

/// Explicit, versioned spec renderings of the configuration structs that
/// enter cache keys.
///
/// Cache identity must be a deliberate statement of a job's inputs, not
/// an accident of `derive(Debug)`: a field rename or a `Debug` tweak
/// would silently invalidate (or worse, alias) every entry. Each
/// renderer here emits one line, `<tag> v<N> field=value ...`, with
/// exhaustive destructuring so adding a field to the source struct fails
/// to compile until the rendering (and its version) is revisited.
pub mod spec_render {
    use crate::cache::fmt_f64;
    use crate::params::PoiseParams;
    use crate::profiler::{GridSpec, ProfileWindow};
    use gpu_sim::WarpTuple;
    use gpu_sim::{CacheGeometry, DramConfig, EnergyConfig, GpuConfig, L2Config, SetIndexing};
    use poise_ml::ScoringWeights;
    use std::fmt::Write as _;

    fn indexing(ix: SetIndexing) -> &'static str {
        match ix {
            SetIndexing::Linear => "linear",
            SetIndexing::Hashed => "hashed",
        }
    }

    fn geometry(g: &CacheGeometry) -> String {
        let CacheGeometry {
            sets,
            ways,
            line_bytes,
            indexing: ix,
        } = *g;
        format!(
            "sets:{sets},ways:{ways},line:{line_bytes},index:{}",
            indexing(ix)
        )
    }

    /// One-line rendering of a [`GpuConfig`].
    ///
    /// `step_mode` and `sim_threads` are deliberately **excluded**: all
    /// step modes (at any thread count) are proven bit-identical (the
    /// differential suites pin it per policy), so results are
    /// interchangeable across modes and switching the default must keep
    /// hitting the same entries.
    pub fn gpu_config(c: &GpuConfig) -> String {
        let GpuConfig {
            sms,
            schedulers_per_sm,
            max_warps_per_scheduler,
            l1,
            l1_hit_latency,
            l1_mshrs,
            mshr_merge_limit,
            l2,
            xbar_latency,
            dram,
            energy,
            track_reuse_distance,
            track_pc_stats,
            step_mode: _,   // bit-identical by contract; see above.
            sim_threads: _, // engine knob — bit-identical by contract; see above.
        } = c;
        let L2Config {
            geometry: l2_geo,
            banks,
            latency: l2_latency,
            service_interval: l2_service,
        } = l2;
        let DramConfig {
            partitions,
            latency: dram_latency,
            service_interval: dram_service,
        } = dram;
        let EnergyConfig {
            alu_op,
            l1_access,
            l2_access,
            dram_access,
            leakage_per_sm_cycle,
        } = energy;
        let mut s = String::new();
        let _ = write!(
            s,
            "gpu v1 sms={sms} schedulers={schedulers_per_sm} \
             max_warps={max_warps_per_scheduler} l1={} l1_hit_latency={l1_hit_latency} \
             l1_mshrs={l1_mshrs} mshr_merge_limit={mshr_merge_limit} l2={},banks:{banks},\
             latency:{l2_latency},service:{l2_service} xbar={xbar_latency} \
             dram=partitions:{partitions},latency:{dram_latency},service:{dram_service} \
             energy=alu:{},l1:{},l2:{},dram:{},leak:{} track_reuse={track_reuse_distance} \
             track_pc={track_pc_stats}",
            geometry(l1),
            geometry(l2_geo),
            fmt_f64(*alu_op),
            fmt_f64(*l1_access),
            fmt_f64(*l2_access),
            fmt_f64(*dram_access),
            fmt_f64(*leakage_per_sm_cycle),
        );
        s
    }

    /// One-line rendering of a [`GridSpec`]: the explicit point list, so
    /// identity survives constructor refactors (a re-derived `coarse`
    /// ladder that yields the same points keeps the same key).
    pub fn grid(g: &GridSpec) -> String {
        let points = g
            .points()
            .iter()
            .map(|(n, p)| format!("{n}:{p}"))
            .collect::<Vec<_>>()
            .join(",");
        format!("grid v1 max_n={} points={points}", g.max_n())
    }

    /// One-line rendering of a [`ProfileWindow`].
    pub fn window(w: &ProfileWindow) -> String {
        let ProfileWindow { warmup, measure } = *w;
        format!("window v1 warmup={warmup} measure={measure}")
    }

    /// One-line rendering of [`ScoringWeights`].
    pub fn scoring(w: &ScoringWeights) -> String {
        let ScoringWeights([w0, w1, w2]) = *w;
        format!(
            "scoring v1 w={},{},{}",
            fmt_f64(w0),
            fmt_f64(w1),
            fmt_f64(w2)
        )
    }

    /// One-line rendering of the full [`PoiseParams`].
    pub fn params(p: &PoiseParams) -> String {
        let PoiseParams {
            scoring: sw,
            t_period,
            t_warmup,
            t_feature,
            t_search,
            i_max,
            stride_n,
            stride_p,
        } = p;
        format!(
            "params v1 {} t_period={t_period} t_warmup={t_warmup} t_feature={t_feature} \
             t_search={t_search} i_max={} stride_n={stride_n} stride_p={stride_p}",
            scoring(sw),
            fmt_f64(*i_max)
        )
    }

    /// One-line rendering of a [`WarpTuple`].
    pub fn tuple(t: &WarpTuple) -> String {
        let WarpTuple { n, p } = *t;
        format!("tuple v1 n={n} p={p}")
    }

    /// Comma-joined integer list (seeds, dropped feature indices).
    pub fn int_list<T: std::fmt::Display>(vs: &[T]) -> String {
        vs.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

// ---------------------------------------------------------------------------
// Job specifications.
// ---------------------------------------------------------------------------

/// Offline {N, p} profile of one kernel (drives SWL / PCAL-SWL /
/// Static-Best and the Fig. 2/5/17 surfaces).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// Workload to profile (synthetic or trace).
    pub workload: Workload,
    /// Machine configuration.
    pub cfg: GpuConfig,
    /// Grid points to sweep.
    pub grid: GridSpec,
    /// Warmup/measure windows per point.
    pub window: ProfileWindow,
}

/// `Pbest` memory-sensitivity classification (64× L1 speedup).
#[derive(Debug, Clone, PartialEq)]
pub struct PbestSpec {
    /// Workload to classify.
    pub workload: Workload,
    /// Machine configuration (the 64× L1 variant is derived internally).
    pub cfg: GpuConfig,
    /// Warmup/measure windows.
    pub window: ProfileWindow,
}

/// One steady-state run at a fixed tuple (Fig. 4 characterisation).
#[derive(Debug, Clone, PartialEq)]
pub struct TupleRunSpec {
    /// Workload to run.
    pub workload: Workload,
    /// Machine configuration.
    pub cfg: GpuConfig,
    /// The fixed warp-tuple.
    pub tuple: WarpTuple,
    /// Warmup/measure windows.
    pub window: ProfileWindow,
}

/// One training sample: profile a kernel, score the surface (Eq. 12),
/// sample the Table II features at the two reference points.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSpec {
    /// Workload to sample.
    pub workload: Workload,
    /// Machine configuration.
    pub cfg: GpuConfig,
    /// Profiling grid.
    pub grid: GridSpec,
    /// Warmup/measure windows.
    pub window: ProfileWindow,
    /// Eq. 12 scoring weights (the only [`PoiseParams`] field sampling
    /// reads, kept minimal so e.g. search-stride studies share samples).
    pub scoring: ScoringWeights,
}

/// A model fit over a training population. Depends on one
/// [`SampleSpec`] per kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// The training workloads (order matters for the fit).
    pub kernels: Vec<Workload>,
    /// Machine configuration for the sampling runs.
    pub cfg: GpuConfig,
    /// Profiling grid for the sampling runs.
    pub grid: GridSpec,
    /// Warmup/measure windows for the sampling runs.
    pub window: ProfileWindow,
    /// Eq. 12 scoring weights.
    pub scoring: ScoringWeights,
    /// Feature indices zeroed before fitting (Fig. 13 ablations).
    pub drop_features: Vec<usize>,
}

impl ModelSpec {
    /// The default offline training run of a [`Setup`]: the training
    /// suite capped per benchmark, profiled on the setup's training grid.
    pub fn default_training(setup: &Setup) -> Self {
        let kernels = training_suite()
            .iter()
            .flat_map(|b| b.capped(setup.train_cap_per_benchmark).kernels)
            .collect();
        ModelSpec {
            kernels,
            cfg: setup.cfg.clone(),
            grid: setup.train_grid.clone(),
            window: setup.profile_window,
            scoring: setup.params.scoring,
            drop_features: Vec::new(),
        }
    }

    /// The same training run with features dropped (Fig. 13).
    pub fn with_dropped(mut self, drop_features: Vec<usize>) -> Self {
        self.drop_features = drop_features;
        self
    }

    fn sample_specs(&self) -> Vec<SampleSpec> {
        self.kernels
            .iter()
            .map(|k| SampleSpec {
                workload: k.clone(),
                cfg: self.cfg.clone(),
                grid: self.grid.clone(),
                window: self.window,
                scoring: self.scoring,
            })
            .collect()
    }
}

/// One evaluation run: a kernel under a scheme for a cycle budget.
///
/// Only the inputs the scheme actually consumes enter the spec: GTO and
/// the profile-driven schemes ignore [`PoiseParams`] entirely, APCM and
/// random-restart read only the epoch length, Poise the full parameter
/// set — so a Fig. 11 stride sweep re-simulates Poise runs only, and the
/// shared GTO baselines stay cached.
#[derive(Debug, Clone)]
pub struct KernelRunSpec {
    /// Workload to run.
    pub workload: Workload,
    /// Scheduling scheme.
    pub scheme: Scheme,
    /// Machine configuration (APCM's per-PC tracking is implied by the
    /// scheme, as in [`run_kernel_configured`]).
    pub cfg: GpuConfig,
    /// Cycle budget.
    pub run_cycles: u64,
    /// Full Poise parameters (`Some` iff the scheme is Poise).
    pub params: Option<PoiseParams>,
    /// Epoch length for APCM / random-restart.
    pub t_period: Option<u64>,
    /// Seeds for random-restart averaging (empty otherwise).
    pub rr_seeds: Vec<u64>,
    /// The model driving a Poise run.
    pub model: Option<Box<ModelSpec>>,
    /// The offline profile driving SWL / PCAL-SWL / Static-Best.
    pub profile: Option<Box<ProfileSpec>>,
    /// Display-only sweep tag (e.g. `sms=16`), set by
    /// [`crate::plan::ExperimentPlan::expand`] on jobs unique to one
    /// sweep point so `run_all` progress lines are distinguishable
    /// within a sweep. Never part of [`SimJob::spec_text`] / cache
    /// identity, and excluded from equality.
    pub tag: Option<String>,
    /// Barrier cycles (strictly ascending, each `<= run_cycles`) at which
    /// this run may fork from — and publish — prefix snapshots, set by
    /// [`factor_prefixes`]. Pure execution strategy: the result is
    /// bit-identical with any chain (including none), so like `tag` this
    /// is never part of [`SimJob::spec_text`] / cache identity and is
    /// excluded from equality.
    pub prefix_chain: Vec<u64>,
}

impl PartialEq for KernelRunSpec {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring: a new field fails to compile here
        // until it is classified as identity (compare) or display (skip).
        let KernelRunSpec {
            workload,
            scheme,
            cfg,
            run_cycles,
            params,
            t_period,
            rr_seeds,
            model,
            profile,
            tag: _,          // display-only
            prefix_chain: _, // execution strategy, not identity
        } = self;
        workload == &other.workload
            && scheme == &other.scheme
            && cfg == &other.cfg
            && run_cycles == &other.run_cycles
            && params == &other.params
            && t_period == &other.t_period
            && rr_seeds == &other.rr_seeds
            && model == &other.model
            && profile == &other.profile
    }
}

impl KernelRunSpec {
    /// Build the spec for running `kernel` under `scheme` as configured
    /// by `setup`. `model` is required for Poise runs.
    pub fn new(
        workload: &Workload,
        scheme: Scheme,
        setup: &Setup,
        model: Option<&ModelSpec>,
    ) -> Self {
        let needs_profile = matches!(scheme, Scheme::Swl | Scheme::PcalSwl | Scheme::StaticBest);
        KernelRunSpec {
            workload: workload.clone(),
            scheme,
            cfg: setup.cfg.clone(),
            run_cycles: setup.run_cycles,
            params: (scheme == Scheme::Poise).then_some(setup.params),
            t_period: matches!(scheme, Scheme::Apcm | Scheme::RandomRestart)
                .then_some(setup.params.t_period),
            rr_seeds: if scheme == Scheme::RandomRestart {
                setup.rr_seeds.clone()
            } else {
                Vec::new()
            },
            model: (scheme == Scheme::Poise)
                .then(|| Box::new(model.expect("a Poise run needs a ModelSpec").clone())),
            profile: needs_profile.then(|| {
                Box::new(ProfileSpec {
                    workload: workload.clone(),
                    cfg: setup.cfg.clone(),
                    grid: setup.eval_grid.clone(),
                    window: setup.profile_window,
                })
            }),
            tag: None,
            prefix_chain: Vec::new(),
        }
    }

    /// The spec of the synthetic [`SimJob::Prefix`] job at barrier
    /// `cycles`, given the boundaries below it: same inputs, shorter
    /// budget, chained through the lower boundaries. Both the factoring
    /// step (which materialises these as jobs) and the engine (which
    /// resolves a run's chain back to cache keys) derive prefix identity
    /// through here, so they agree by construction.
    fn prefix_at(&self, cycles: u64, below: &[u64]) -> KernelRunSpec {
        let mut p = self.clone();
        p.run_cycles = cycles;
        p.prefix_chain = below.to_vec();
        // Deterministic regardless of which run of the group derived it
        // (the prefix label shows its own barrier cycle instead).
        p.tag = None;
        p
    }

    /// Resolve the scheme's consumed inputs from the dep outputs (in
    /// [`SimJob::deps`] order) — shared by the run and prefix arms of
    /// `execute`, which must agree exactly for a forked suffix to see
    /// the same controller as the prefix that produced the blob.
    fn resolve_inputs<'a>(
        &self,
        dep_outputs: &[&'a JobOutput],
    ) -> (Option<&'a TrainedModel>, Option<ProfileTuples>, PoiseParams) {
        let mut di = dep_outputs.iter();
        let model = self
            .model
            .as_ref()
            .map(|_| di.next().expect("model dep").as_model().expect("model"));
        let grid = self
            .profile
            .as_ref()
            .map(|_| di.next().expect("profile dep").as_grid().expect("grid"));
        let tuples = grid.map(|g| {
            let max_warps = self
                .workload
                .warps_per_scheduler()
                .min(self.cfg.max_warps_per_scheduler);
            ProfileTuples {
                swl: swl_tuple_from_grid(g, max_warps),
                best: static_best_from_grid(g, max_warps),
            }
        });
        let params = match (self.params, self.t_period) {
            (Some(p), _) => p,
            (None, Some(t)) => PoiseParams {
                t_period: t,
                ..PoiseParams::default()
            },
            (None, None) => PoiseParams::default(),
        };
        (model, tuples, params)
    }
}

// ---------------------------------------------------------------------------
// SimJob.
// ---------------------------------------------------------------------------

/// One unit of simulation work. See the module docs for the catalogue.
#[derive(Debug, Clone, PartialEq)]
pub enum SimJob {
    /// Offline {N, p} profile.
    Profile(ProfileSpec),
    /// Pbest classification.
    Pbest(PbestSpec),
    /// Steady-state run at a fixed tuple.
    TupleRun(TupleRunSpec),
    /// Training-sample collection.
    Sample(SampleSpec),
    /// Model fit (depends on its samples).
    Train(ModelSpec),
    /// Evaluation run (may depend on a model and/or a profile).
    Run(KernelRunSpec),
    /// Shared simulation prefix: the same inputs as a [`SimJob::Run`]
    /// but its output is the machine + controller snapshot blob at
    /// `run_cycles`, content-addressed in the cache like any other job
    /// output. Runs (and deeper prefixes) whose declared chain contains
    /// this barrier fork from the blob instead of re-simulating the span
    /// — on any worker, since the cache is the fabric's shared medium.
    Prefix(KernelRunSpec),
}

impl SimJob {
    /// Short cache-file/kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            SimJob::Profile(_) => "profile",
            SimJob::Pbest(_) => "pbest",
            SimJob::TupleRun(_) => "tuple",
            SimJob::Sample(_) => "sample",
            SimJob::Train(_) => "train",
            SimJob::Run(_) => "run",
            SimJob::Prefix(_) => "prefix",
        }
    }

    /// Human-readable progress label.
    pub fn label(&self) -> String {
        match self {
            SimJob::Profile(s) => {
                format!("profile[{} {}pt]", s.workload.name(), s.grid.points().len())
            }
            SimJob::Pbest(s) => format!("pbest[{}]", s.workload.name()),
            SimJob::TupleRun(s) => format!("tuple[{} {}]", s.workload.name(), s.tuple),
            SimJob::Sample(s) => format!("sample[{}]", s.workload.name()),
            SimJob::Train(s) => format!("train[{}k drop{:?}]", s.kernels.len(), s.drop_features),
            SimJob::Run(s) => match &s.tag {
                // Sweep-expanded jobs show the varied axis value so
                // progress lines are distinguishable within a sweep.
                Some(tag) => format!("run[{} {} {tag}]", s.workload.name(), s.scheme.name()),
                None => format!("run[{} {}]", s.workload.name(), s.scheme.name()),
            },
            SimJob::Prefix(s) => format!(
                "prefix[{} {} @{}]",
                s.workload.name(),
                s.scheme.name(),
                s.run_cycles
            ),
        }
    }

    /// Canonical specification text: every input field, one per line,
    /// rendered through the explicit versioned [`spec_render`] functions
    /// (never `derive(Debug)` — cache identity must survive struct
    /// refactors) with exact (round-trip) float formatting. Dependencies
    /// appear as the SHA-256 of *their* spec text, so input edits
    /// propagate through the graph.
    pub fn spec_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "job {}", self.kind());
        match self {
            SimJob::Profile(p) => {
                let _ = writeln!(s, "{}", p.workload.spec_line());
                let _ = writeln!(s, "cfg {}", spec_render::gpu_config(&p.cfg));
                let _ = writeln!(s, "{}", spec_render::grid(&p.grid));
                let _ = writeln!(s, "{}", spec_render::window(&p.window));
            }
            SimJob::Pbest(p) => {
                let _ = writeln!(s, "{}", p.workload.spec_line());
                let _ = writeln!(s, "cfg {}", spec_render::gpu_config(&p.cfg));
                let _ = writeln!(s, "{}", spec_render::window(&p.window));
            }
            SimJob::TupleRun(t) => {
                let _ = writeln!(s, "{}", t.workload.spec_line());
                let _ = writeln!(s, "cfg {}", spec_render::gpu_config(&t.cfg));
                let _ = writeln!(s, "{}", spec_render::tuple(&t.tuple));
                let _ = writeln!(s, "{}", spec_render::window(&t.window));
            }
            SimJob::Sample(p) => {
                let _ = writeln!(s, "{}", p.workload.spec_line());
                let _ = writeln!(s, "cfg {}", spec_render::gpu_config(&p.cfg));
                let _ = writeln!(s, "{}", spec_render::grid(&p.grid));
                let _ = writeln!(s, "{}", spec_render::window(&p.window));
                let _ = writeln!(s, "{}", spec_render::scoring(&p.scoring));
            }
            SimJob::Train(m) => {
                for k in &m.kernels {
                    let _ = writeln!(s, "{}", k.spec_line());
                }
                let _ = writeln!(s, "cfg {}", spec_render::gpu_config(&m.cfg));
                let _ = writeln!(s, "{}", spec_render::grid(&m.grid));
                let _ = writeln!(s, "{}", spec_render::window(&m.window));
                let _ = writeln!(s, "{}", spec_render::scoring(&m.scoring));
                let _ = writeln!(
                    s,
                    "drop_features {}",
                    spec_render::int_list(&m.drop_features)
                );
            }
            // A prefix renders the same input lines as the run it was
            // factored from (under its own `job prefix` header): its
            // identity is exactly "the simulation of these inputs up to
            // run_cycles", which is what suffix runs resolve against.
            SimJob::Run(r) | SimJob::Prefix(r) => {
                let _ = writeln!(s, "{}", r.workload.spec_line());
                let _ = writeln!(s, "scheme {}", r.scheme.name());
                let _ = writeln!(s, "cfg {}", spec_render::gpu_config(&r.cfg));
                let _ = writeln!(s, "run_cycles {}", r.run_cycles);
                if let Some(p) = &r.params {
                    let _ = writeln!(s, "{}", spec_render::params(p));
                }
                if let Some(t) = r.t_period {
                    let _ = writeln!(s, "t_period {t}");
                }
                if !r.rr_seeds.is_empty() {
                    let _ = writeln!(s, "rr_seeds {}", spec_render::int_list(&r.rr_seeds));
                }
                if let Some(m) = &r.model {
                    let _ = writeln!(
                        s,
                        "model {}",
                        sha256_hex(&SimJob::Train((**m).clone()).spec_text())
                    );
                }
                if let Some(p) = &r.profile {
                    let _ = writeln!(
                        s,
                        "profile {}",
                        sha256_hex(&SimJob::Profile((**p).clone()).spec_text())
                    );
                }
            }
        }
        s
    }

    /// Direct dependencies (jobs whose outputs this job consumes).
    pub fn deps(&self) -> Vec<SimJob> {
        match self {
            SimJob::Train(m) => m.sample_specs().into_iter().map(SimJob::Sample).collect(),
            SimJob::Run(r) | SimJob::Prefix(r) => {
                let mut d = Vec::new();
                if let Some(m) = &r.model {
                    d.push(SimJob::Train((**m).clone()));
                }
                if let Some(p) = &r.profile {
                    d.push(SimJob::Profile((**p).clone()));
                }
                d
            }
            _ => Vec::new(),
        }
    }

    /// Execution wave: dependencies always live in strictly lower waves.
    /// Prefix chains are *soft* dependencies — a missing or corrupt blob
    /// degrades to re-simulation, not failure — so they are ordered by
    /// wave (each prefix one wave after the deepest boundary it forks
    /// from) rather than by graph edges, which keeps chains out of cache
    /// identity.
    pub(crate) fn wave(&self) -> usize {
        const PREFIX_BASE: usize = 2;
        match self {
            SimJob::Train(_) => 1,
            SimJob::Prefix(r) => PREFIX_BASE + r.prefix_chain.len(),
            // All evaluation runs share the final wave so the fan-out
            // across schemes/kernels keeps every core busy; by then every
            // prefix blob they could fork from is in the cache.
            SimJob::Run(_) => usize::MAX,
            _ => 0,
        }
    }

    /// Execute the job. `dep_outputs` holds the resolved outputs in
    /// [`SimJob::deps`] order; `prefixes` is the engine's snapshot
    /// transport for jobs with a prefix chain (`None` runs cold). Panics
    /// propagate to the engine's isolation layer.
    fn execute(&self, dep_outputs: &[&JobOutput], prefixes: Option<&PrefixIo>) -> JobOutput {
        match self {
            SimJob::Profile(p) => {
                JobOutput::Grid(profile_grid(&p.workload, &p.cfg, &p.grid, p.window))
            }
            SimJob::Pbest(p) => JobOutput::Scalar(pbest(&p.workload, &p.cfg, p.window)),
            SimJob::TupleRun(t) => {
                JobOutput::Steady(run_tuple(&t.workload, &t.cfg, t.tuple, t.window))
            }
            SimJob::Sample(p) => JobOutput::Sample(collect_sample_scored(
                &p.workload,
                &p.cfg,
                &p.grid,
                p.window,
                &p.scoring,
            )),
            SimJob::Train(m) => {
                let samples: Vec<TrainingSample> = dep_outputs
                    .iter()
                    .map(|o| o.as_sample().expect("train dep is a sample").clone())
                    .collect();
                JobOutput::Model(fit_samples(&samples, m.window, &m.drop_features))
            }
            SimJob::Run(r) => {
                let (model, tuples, params) = r.resolve_inputs(dep_outputs);
                // Fork from the deepest cached prefix when a chain was
                // declared and the engine could resolve it; the cold path
                // is the unchanged legacy runner, so unfactored plans are
                // byte-for-byte unaffected.
                match prefixes.filter(|_| !r.prefix_chain.is_empty()) {
                    Some(io) => JobOutput::Run(run_kernel_segmented(
                        &r.workload,
                        r.scheme,
                        model,
                        tuples,
                        &r.cfg,
                        &params,
                        r.run_cycles,
                        io,
                    )),
                    None => JobOutput::Run(run_kernel_configured(
                        &r.workload,
                        r.scheme,
                        model,
                        tuples,
                        &r.cfg,
                        &params,
                        &r.rr_seeds,
                        r.run_cycles,
                    )),
                }
            }
            SimJob::Prefix(r) => {
                let (model, tuples, params) = r.resolve_inputs(dep_outputs);
                /// Cold transport for a chainless (or unresolvable)
                /// prefix: no boundaries to fork from or publish to.
                struct NoPrefixes;
                impl PrefixStore for NoPrefixes {
                    fn boundaries(&self) -> &[u64] {
                        &[]
                    }
                    fn load(&self, _cycles: u64) -> Option<String> {
                        None
                    }
                    fn store(&self, _cycles: u64, _blob: &str) {}
                }
                let io = prefixes
                    .map(|p| p as &dyn PrefixStore)
                    .unwrap_or(&NoPrefixes);
                JobOutput::Snapshot(run_prefix_blob(
                    &r.workload,
                    r.scheme,
                    model,
                    tuples,
                    &r.cfg,
                    &params,
                    r.run_cycles,
                    io,
                ))
            }
        }
    }

    /// The digest of a dependency's output *as consumed by this job*: a
    /// Poise run digests the model weights, a profile-driven run only the
    /// two derived tuples (so profile jitter that leaves the chosen
    /// tuples intact does not invalidate the run), and training digests
    /// the full sample rows.
    fn dep_digest(&self, dep: &SimJob, out: &JobOutput) -> String {
        match (self, dep, out) {
            (SimJob::Run(r) | SimJob::Prefix(r), SimJob::Profile(_), JobOutput::Grid(g)) => {
                let max_warps = r
                    .workload
                    .warps_per_scheduler()
                    .min(r.cfg.max_warps_per_scheduler);
                format!(
                    "tuples swl={:?} best={:?}",
                    swl_tuple_from_grid(g, max_warps),
                    static_best_from_grid(g, max_warps)
                )
            }
            _ => sha256_hex(&out.to_text()),
        }
    }
}

// ---------------------------------------------------------------------------
// Job outputs and their serialisation.
// ---------------------------------------------------------------------------

/// The result of one [`SimJob`].
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Profile output.
    Grid(SpeedupGrid),
    /// Pbest output.
    Scalar(f64),
    /// Fixed-tuple steady-state output.
    Steady(SteadyState),
    /// Training-sample output.
    Sample(TrainingSample),
    /// Model-fit output.
    Model(TrainedModel),
    /// Evaluation-run output.
    Run(KernelRun),
    /// Prefix-job output: a [`PrefixBlob`] in its durable text form,
    /// kept verbatim so a cache round trip is byte-identical.
    Snapshot(String),
}

macro_rules! counter_fields {
    ($m:ident) => {
        $m!(
            cycles,
            instructions,
            loads,
            stores,
            l1_accesses,
            l1_hits,
            l1_intra_hits,
            l1_inter_hits,
            l1_hits_polluting,
            l1_accesses_polluting,
            l1_hits_non_polluting,
            l1_accesses_non_polluting,
            l1_misses_completed,
            miss_latency_sum,
            l1_rejects,
            mshr_allocations,
            mshr_merges,
            l2_accesses,
            l2_hits,
            dram_accesses,
            busy_scheduler_cycles,
            stall_scheduler_cycles,
            in_gap_sum,
            in_gap_count,
            reuse_distance_sum,
            reuse_distance_count
        )
    };
}

fn counters_to_line(c: &Counters) -> String {
    macro_rules! list {
        ($($f:ident),*) => {{
            // Exhaustive destructuring (no `..`): adding a field to
            // `Counters` without extending `counter_fields!` fails to
            // compile here, instead of silently serialising — and, via
            // the engine's canonicalise-through-serialisation step,
            // zeroing — the new counter.
            let Counters { $($f),* } = *c;
            vec![$($f.to_string()),*]
        }};
    }
    counter_fields!(list).join(" ")
}

fn counters_from_line(line: &str) -> Option<Counters> {
    let vals: Vec<u64> = line
        .split_whitespace()
        .map(|v| v.parse().ok())
        .collect::<Option<Vec<_>>>()?;
    let mut c = Counters::default();
    macro_rules! assign {
        ($($f:ident),*) => {{
            let mut it = vals.iter();
            $(c.$f = *it.next()?;)*
            if it.next().is_some() { return None; }
        }};
    }
    counter_fields!(assign);
    Some(c)
}

fn floats_to_line(vs: &[f64]) -> String {
    vs.iter().map(|v| fmt_f64(*v)).collect::<Vec<_>>().join(" ")
}

fn floats_from_line(line: &str, n: usize) -> Option<Vec<f64>> {
    let vs: Vec<f64> = line
        .split_whitespace()
        .map(parse_f64)
        .collect::<Option<Vec<_>>>()?;
    (vs.len() == n).then_some(vs)
}

impl JobOutput {
    /// Serialise to the cache body format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        match self {
            JobOutput::Grid(g) => {
                let _ = writeln!(s, "max_n {}", g.max_n());
                for (n, p, v) in g.iter() {
                    let _ = writeln!(s, "cell {n} {p} {}", fmt_f64(v));
                }
            }
            JobOutput::Scalar(v) => {
                let _ = writeln!(s, "value {}", fmt_f64(*v));
            }
            JobOutput::Steady(st) => {
                let _ = writeln!(s, "tuple {} {}", st.tuple.n, st.tuple.p);
                let _ = writeln!(s, "window {}", counters_to_line(&st.window));
            }
            JobOutput::Sample(t) => {
                let _ = writeln!(s, "kernel {}", t.kernel);
                let _ = writeln!(s, "features {}", floats_to_line(&t.features.0));
                let _ = writeln!(s, "target {} {}", t.target.n, t.target.p);
                let _ = writeln!(s, "best_speedup {}", fmt_f64(t.best_speedup));
                let _ = writeln!(s, "baseline_cycles {}", t.baseline_cycles);
                let _ = writeln!(s, "ref_hit_rate {}", fmt_f64(t.ref_hit_rate));
            }
            JobOutput::Model(m) => {
                let _ = writeln!(s, "alpha {}", floats_to_line(&m.alpha));
                let _ = writeln!(s, "beta {}", floats_to_line(&m.beta));
                let _ = writeln!(
                    s,
                    "dispersion {} {}",
                    fmt_f64(m.dispersion_n),
                    fmt_f64(m.dispersion_p)
                );
                let _ = writeln!(s, "samples_used {}", m.samples_used);
                let _ = writeln!(s, "dropped_features {:?}", m.dropped_features);
            }
            JobOutput::Run(r) => {
                let _ = writeln!(s, "kernel {}", r.kernel);
                let _ = writeln!(s, "counters {}", counters_to_line(&r.counters));
                let _ = writeln!(
                    s,
                    "energy {}",
                    floats_to_line(&[
                        r.energy.alu,
                        r.energy.l1,
                        r.energy.l2,
                        r.energy.dram,
                        r.energy.leakage
                    ])
                );
                for l in &r.epoch_logs {
                    let _ = writeln!(
                        s,
                        "epoch {} {} {} {} {} {}",
                        l.cycle,
                        l.predicted.n,
                        l.predicted.p,
                        l.searched.n,
                        l.searched.p,
                        u8::from(l.early_out)
                    );
                }
            }
            JobOutput::Snapshot(blob) => {
                s.push_str(blob);
            }
        }
        s
    }

    /// Parse a cache body of the given kind. `None` on any mismatch, in
    /// which case the job silently re-runs.
    pub fn from_text(kind: &str, body: &str) -> Option<JobOutput> {
        let mut lines = body.lines();
        match kind {
            "profile" => {
                let max_n: usize = lines.next()?.strip_prefix("max_n ")?.parse().ok()?;
                // Range-check everything before touching SpeedupGrid: its
                // constructor/setter assert their invariants, and a panic
                // here (a corrupt body that survived the header checks)
                // would escape the engine's per-job isolation.
                if max_n == 0 {
                    return None;
                }
                let mut g = SpeedupGrid::new(max_n);
                for line in lines {
                    let rest = line.strip_prefix("cell ")?;
                    let mut it = rest.split_whitespace();
                    let n: usize = it.next()?.parse().ok()?;
                    let p: usize = it.next()?.parse().ok()?;
                    let v = parse_f64(it.next()?)?;
                    if n == 0 || p == 0 || n > max_n || p > n {
                        return None;
                    }
                    g.set(n, p, v);
                }
                Some(JobOutput::Grid(g))
            }
            "pbest" => {
                let v = parse_f64(lines.next()?.strip_prefix("value ")?)?;
                Some(JobOutput::Scalar(v))
            }
            "tuple" => {
                let mut t = lines.next()?.strip_prefix("tuple ")?.split_whitespace();
                let n: usize = t.next()?.parse().ok()?;
                let p: usize = t.next()?.parse().ok()?;
                let window = counters_from_line(lines.next()?.strip_prefix("window ")?)?;
                Some(JobOutput::Steady(SteadyState {
                    tuple: WarpTuple { n, p },
                    window,
                }))
            }
            "sample" => {
                let kernel = lines.next()?.strip_prefix("kernel ")?.to_string();
                let feats = floats_from_line(lines.next()?.strip_prefix("features ")?, N_FEATURES)?;
                let mut t = lines.next()?.strip_prefix("target ")?.split_whitespace();
                let n: usize = t.next()?.parse().ok()?;
                let p: usize = t.next()?.parse().ok()?;
                let best_speedup = parse_f64(lines.next()?.strip_prefix("best_speedup ")?)?;
                let baseline_cycles = lines
                    .next()?
                    .strip_prefix("baseline_cycles ")?
                    .parse()
                    .ok()?;
                let ref_hit_rate = parse_f64(lines.next()?.strip_prefix("ref_hit_rate ")?)?;
                let mut features = poise_ml::FeatureVector([0.0; N_FEATURES]);
                features.0.copy_from_slice(&feats);
                Some(JobOutput::Sample(TrainingSample {
                    kernel,
                    features,
                    target: WarpTuple { n, p },
                    best_speedup,
                    baseline_cycles,
                    ref_hit_rate,
                }))
            }
            "train" => {
                let alpha = floats_from_line(lines.next()?.strip_prefix("alpha ")?, N_FEATURES)?;
                let beta = floats_from_line(lines.next()?.strip_prefix("beta ")?, N_FEATURES)?;
                let disp = floats_from_line(lines.next()?.strip_prefix("dispersion ")?, 2)?;
                let samples_used = lines.next()?.strip_prefix("samples_used ")?.parse().ok()?;
                let dropped = lines.next()?.strip_prefix("dropped_features ")?;
                let dropped_features: Vec<usize> = dropped
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .split(',')
                    .filter(|t| !t.trim().is_empty())
                    .map(|t| t.trim().parse().ok())
                    .collect::<Option<Vec<_>>>()?;
                let mut m = TrainedModel {
                    alpha: [0.0; N_FEATURES],
                    beta: [0.0; N_FEATURES],
                    dispersion_n: disp[0],
                    dispersion_p: disp[1],
                    samples_used,
                    dropped_features,
                };
                m.alpha.copy_from_slice(&alpha);
                m.beta.copy_from_slice(&beta);
                Some(JobOutput::Model(m))
            }
            "run" => {
                let kernel = lines.next()?.strip_prefix("kernel ")?.to_string();
                let counters = counters_from_line(lines.next()?.strip_prefix("counters ")?)?;
                let e = floats_from_line(lines.next()?.strip_prefix("energy ")?, 5)?;
                let mut epoch_logs = Vec::new();
                for line in lines {
                    let mut it = line.strip_prefix("epoch ")?.split_whitespace();
                    let cycle: u64 = it.next()?.parse().ok()?;
                    let pn: usize = it.next()?.parse().ok()?;
                    let pp: usize = it.next()?.parse().ok()?;
                    let sn: usize = it.next()?.parse().ok()?;
                    let sp: usize = it.next()?.parse().ok()?;
                    let early: u8 = it.next()?.parse().ok()?;
                    epoch_logs.push(crate::hie::EpochLog {
                        cycle,
                        predicted: WarpTuple { n: pn, p: pp },
                        searched: WarpTuple { n: sn, p: sp },
                        early_out: early != 0,
                    });
                }
                Some(JobOutput::Run(KernelRun {
                    kernel,
                    counters,
                    energy: EnergyBreakdown {
                        alu: e[0],
                        l1: e[1],
                        l2: e[2],
                        dram: e[3],
                        leakage: e[4],
                    },
                    epoch_logs,
                }))
            }
            "prefix" => {
                // Full structural + snapshot-grammar validation: this is
                // the path `--fsck` (and every cache hit) goes through,
                // so a bit-flipped blob is caught here and quarantined by
                // the cache's self-healing machinery rather than fed to
                // `Gpu::restore` later.
                let blob = PrefixBlob::parse(body)?;
                gpu_sim::snapshot::validate(&blob.gpu).ok()?;
                Some(JobOutput::Snapshot(body.to_string()))
            }
            _ => None,
        }
    }

    /// Downcast helpers.
    pub fn as_grid(&self) -> Option<&SpeedupGrid> {
        match self {
            JobOutput::Grid(g) => Some(g),
            _ => None,
        }
    }

    /// The Pbest scalar, if that is what this output is.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            JobOutput::Scalar(v) => Some(*v),
            _ => None,
        }
    }

    /// The steady-state tuple run, if that is what this output is.
    pub fn as_steady(&self) -> Option<&SteadyState> {
        match self {
            JobOutput::Steady(s) => Some(s),
            _ => None,
        }
    }

    /// The training sample, if that is what this output is.
    pub fn as_sample(&self) -> Option<&TrainingSample> {
        match self {
            JobOutput::Sample(s) => Some(s),
            _ => None,
        }
    }

    /// The trained model, if that is what this output is.
    pub fn as_model(&self) -> Option<&TrainedModel> {
        match self {
            JobOutput::Model(m) => Some(m),
            _ => None,
        }
    }

    /// The prefix snapshot blob text, if that is what this output is.
    pub fn as_snapshot(&self) -> Option<&str> {
        match self {
            JobOutput::Snapshot(b) => Some(b),
            _ => None,
        }
    }

    /// The evaluation run, if that is what this output is.
    pub fn as_run(&self) -> Option<&KernelRun> {
        match self {
            JobOutput::Run(r) => Some(r),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

/// Resolved results of an engine run, addressed by job spec.
#[derive(Debug, Default)]
pub struct ResultStore {
    pub(crate) outputs: HashMap<String, Result<JobOutput, String>>,
    /// Execution wall seconds per job spec: measured for executed jobs,
    /// recalled from the entry's metadata for cache hits — so
    /// throughput-reporting figures render identically cold and warm.
    pub(crate) walls: HashMap<String, f64>,
}

impl ResultStore {
    /// Fetch a job's output; `Err` carries the failure (or "never ran").
    pub fn get(&self, job: &SimJob) -> Result<&JobOutput, String> {
        match self.outputs.get(&job.spec_text()) {
            Some(Ok(o)) => Ok(o),
            Some(Err(e)) => Err(e.clone()),
            None => Err(format!("{} was not executed", job.label())),
        }
    }

    /// The execution wall seconds of a job's simulation (see `walls`).
    /// `None` for failed/never-run jobs or entries predating the
    /// metadata.
    pub fn wall(&self, job: &SimJob) -> Option<f64> {
        self.walls
            .get(&job.spec_text())
            .copied()
            .filter(|w| *w > 0.0)
    }

    /// The profile grid for `spec`.
    pub fn grid(&self, spec: &ProfileSpec) -> Result<&SpeedupGrid, String> {
        self.get(&SimJob::Profile(spec.clone()))
            .map(|o| o.as_grid().expect("profile output"))
    }

    /// The Pbest scalar for `spec`.
    pub fn pbest(&self, spec: &PbestSpec) -> Result<f64, String> {
        self.get(&SimJob::Pbest(spec.clone()))
            .map(|o| o.as_scalar().expect("pbest output"))
    }

    /// The steady-state run for `spec`.
    pub fn steady(&self, spec: &TupleRunSpec) -> Result<&SteadyState, String> {
        self.get(&SimJob::TupleRun(spec.clone()))
            .map(|o| o.as_steady().expect("tuple output"))
    }

    /// The training sample for `spec`.
    pub fn sample(&self, spec: &SampleSpec) -> Result<&TrainingSample, String> {
        self.get(&SimJob::Sample(spec.clone()))
            .map(|o| o.as_sample().expect("sample output"))
    }

    /// The trained model for `spec`.
    pub fn model(&self, spec: &ModelSpec) -> Result<&TrainedModel, String> {
        self.get(&SimJob::Train(spec.clone()))
            .map(|o| o.as_model().expect("train output"))
    }

    /// The evaluation run for `spec`.
    pub fn run(&self, spec: &KernelRunSpec) -> Result<&KernelRun, String> {
        self.get(&SimJob::Run(spec.clone()))
            .map(|o| o.as_run().expect("run output"))
    }
}

/// How one execution attempt (or a whole job) failed. The class decides
/// the retry policy: transient errors and timeouts are retried with
/// exponential backoff, panics and dependency failures are terminal (a
/// panic is a deterministic bug — retrying re-executes the same crash;
/// a dependency failure can only be fixed upstream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailClass {
    /// The job panicked (caught by the engine's isolation layer).
    Panic,
    /// A transient error (in practice: injected; a real fabric would map
    /// flaky I/O here). Retryable.
    Transient,
    /// The watchdog cancelled the attempt past its deadline. Retryable.
    Timeout,
    /// An upstream dependency failed; never attempted.
    Dependency,
    /// The engine's veto gate refused the job (its submission was
    /// cancelled — see [`Engine::veto`]). Terminal by construction:
    /// retrying a job nobody wants would only burn the budget.
    Cancelled,
}

impl FailClass {
    /// Stable display name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            FailClass::Panic => "panic",
            FailClass::Transient => "transient",
            FailClass::Timeout => "timeout",
            FailClass::Dependency => "dependency",
            FailClass::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`FailClass::name`], for parsing worker reports.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "panic" => Some(FailClass::Panic),
            "transient" => Some(FailClass::Transient),
            "timeout" => Some(FailClass::Timeout),
            "dependency" => Some(FailClass::Dependency),
            "cancelled" => Some(FailClass::Cancelled),
            _ => None,
        }
    }
}

/// One failed execution attempt of a job.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// Failure classification.
    pub class: FailClass,
    /// The error / panic payload.
    pub error: String,
    /// Backoff slept after this attempt before the next one (0 when the
    /// attempt was terminal).
    pub backoff_ms: u64,
    /// Wall milliseconds the attempt itself ran before failing (0 for
    /// synthetic records, e.g. a lease-steal marker).
    pub wall_ms: u64,
}

/// Final disposition of a job that had at least one failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// A retry succeeded; the job's output is valid.
    Recovered,
    /// All attempts exhausted (or the failure was terminal).
    Failed,
    /// The final attempt was cancelled by the watchdog.
    TimedOut,
}

impl JobOutcome {
    /// Stable display name (used in summaries and reports).
    pub fn name(self) -> &'static str {
        match self {
            JobOutcome::Recovered => "recovered",
            JobOutcome::Failed => "failed",
            JobOutcome::TimedOut => "timed out",
        }
    }

    /// Inverse of [`JobOutcome::name`], for parsing worker reports.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "recovered" => Some(JobOutcome::Recovered),
            "failed" => Some(JobOutcome::Failed),
            "timed out" => Some(JobOutcome::TimedOut),
            _ => None,
        }
    }
}

/// The full failure history of one troubled job, for the structured
/// failures report (`results/run_all_failures.txt`).
#[derive(Debug, Clone)]
pub struct JobTrouble {
    /// The job's progress label.
    pub label: String,
    /// SHA-256 of the job's spec text — the stable cross-process job
    /// identity (the full cache key needs dependency outputs).
    pub spec_hash: String,
    /// Which worker finally disposed of the job: `"local"` for the
    /// in-process engine, the worker id under the fabric.
    pub worker: String,
    /// Every failed attempt, in order.
    pub attempts: Vec<AttemptRecord>,
    /// Where the job ended up.
    pub outcome: JobOutcome,
}

/// Outcome summary of one [`Engine::run`].
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Unique jobs in the expanded graph.
    pub total: usize,
    /// Jobs actually simulated this run.
    pub executed: usize,
    /// Jobs answered from the cache.
    pub cache_hits: usize,
    /// Failed jobs as `(label, error)`; dependants of a failed job fail
    /// with a "dependency failed" error. Includes timed-out jobs (see
    /// [`RunReport::timed_out`] and the per-job [`JobTrouble`] records
    /// for the distinction).
    pub failed: Vec<(String, String)>,
    /// Jobs that needed more than one execution attempt.
    pub retried: usize,
    /// Jobs that failed at least once but ultimately succeeded.
    pub recovered: usize,
    /// Jobs whose *final* disposition was a watchdog timeout (subset of
    /// `failed`).
    pub timed_out: usize,
    /// Cache entries found corrupt during this run (quarantined and
    /// re-executed; see [`crate::cache`]).
    pub corrupt: u64,
    /// Corrupt entries successfully moved under `quarantine/`.
    pub quarantined: u64,
    /// Failure history of every troubled job — recovered, failed and
    /// timed-out alike — for the structured failures report.
    pub trouble: Vec<JobTrouble>,
    /// Leases this run stole from stale owners (fabric only).
    pub stolen: u64,
    /// Completed executions discarded because the lease was lost
    /// mid-run (fabric only; never counted in `executed`).
    pub lost: u64,
    /// Orphaned leases reaped at startup / shutdown (fabric only).
    pub reaped: u64,
    /// Workers that contributed to this report (0 = plain in-process
    /// run, which omits the fabric counters from the summary line).
    pub workers: usize,
    /// Wall-clock of the engine run.
    pub wall: Duration,
}

impl RunReport {
    /// Cache hit rate over the whole graph, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / self.total as f64
        }
    }

    /// One-line summary for logs. The robustness counters (`timed_out`,
    /// `retried`, `recovered`) appear only when nonzero, so quiet runs
    /// keep the familiar shape; `corrupt` is always shown — silence must
    /// mean "checked and clean", not "unchecked".
    pub fn summary_line(&self) -> String {
        let mut s = format!(
            "jobs={} executed={} cache_hits={} failed={}",
            self.total,
            self.executed,
            self.cache_hits,
            self.failed.len(),
        );
        if self.timed_out > 0 {
            s.push_str(&format!(" timed_out={}", self.timed_out));
        }
        if self.retried > 0 {
            s.push_str(&format!(" retried={}", self.retried));
        }
        if self.recovered > 0 {
            s.push_str(&format!(" recovered={}", self.recovered));
        }
        if self.workers > 0 {
            s.push_str(&format!(
                " workers={} stolen={} lost={} reaped={}",
                self.workers, self.stolen, self.lost, self.reaped
            ));
        }
        s.push_str(&format!(
            " hit_rate={:.1}% corrupt={} wall={:.1}s",
            100.0 * self.hit_rate(),
            self.corrupt,
            self.wall.as_secs_f64()
        ));
        s
    }
}

/// Lifecycle status of one job, as streamed to a [`ProgressSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Execution of an attempt began (a cache miss — hits never start).
    Started,
    /// A failed attempt will be retried after backoff.
    Retried,
    /// Answered from the cache without executing.
    Hit,
    /// Executed and committed on the first attempt.
    Done,
    /// Executed and committed after at least one failed attempt.
    Recovered,
    /// All attempts exhausted (or the failure was terminal).
    Failed,
    /// Refused by the veto gate: every subscriber cancelled.
    Cancelled,
}

impl JobStatus {
    /// Stable display name (the protocol renders this).
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Started => "started",
            JobStatus::Retried => "retried",
            JobStatus::Hit => "hit",
            JobStatus::Done => "done",
            JobStatus::Recovered => "recovered",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`JobStatus::name`], for protocol parsing.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "started" => Some(JobStatus::Started),
            "retried" => Some(JobStatus::Retried),
            "hit" => Some(JobStatus::Hit),
            "done" => Some(JobStatus::Done),
            "recovered" => Some(JobStatus::Recovered),
            "failed" => Some(JobStatus::Failed),
            "cancelled" => Some(JobStatus::Cancelled),
            _ => None,
        }
    }

    /// Whether this status resolves the job (exactly one terminal event
    /// is emitted per resolved job; `Started`/`Retried` may repeat).
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Started | JobStatus::Retried)
    }
}

/// One job-lifecycle event, emitted through the engine's
/// [`ProgressSink`] as execution proceeds (the daemon's per-client
/// progress streams ride on these).
#[derive(Debug, Clone)]
pub struct JobEvent {
    /// The job's progress label.
    pub label: String,
    /// SHA-256 of the job's spec text — the stable job identity the
    /// daemon's submissions subscribe on.
    pub spec_hash: String,
    /// What happened.
    pub status: JobStatus,
    /// Failed attempts so far (cumulative across lease owners).
    pub attempts: u32,
    /// Wall seconds of the resolving execution (0 while not terminal).
    pub wall: f64,
    /// The failure message, for `Failed`/`Cancelled`/`Retried`.
    pub error: Option<String>,
}

/// An external observer of job lifecycle events. Implementations must
/// be cheap and non-blocking — events fire inside the engine's parallel
/// execution loops.
pub trait ProgressSink: Send + Sync {
    /// One lifecycle event. Exactly one terminal event per resolved job
    /// (see [`JobStatus::is_terminal`]); `Started`/`Retried` may repeat
    /// across attempts and lease owners.
    fn job_event(&self, event: &JobEvent);
}

/// Cancellation predicate consulted by spec hash before each attempt
/// (`true` = the job was withdrawn and must not execute).
pub type VetoFn = dyn Fn(&str) -> bool + Send + Sync;

/// The deduplicated dependency closure of `jobs` as
/// `(spec_hash, label)` pairs in stable execution order — the identity
/// set the daemon coalesces submissions on (two submissions overlap
/// exactly where these hashes collide).
pub fn graph_closure(jobs: &[SimJob]) -> Vec<(String, String)> {
    let JobGraph { by_spec, order } = expand_graph(jobs);
    order
        .iter()
        .map(|spec| (sha256_hex(spec), by_spec[spec].label()))
        .collect()
}

/// The per-run watchdog: a registry of `(cancellation token, due time)`
/// pairs patrolled by one background thread for the duration of an
/// [`Engine::run`]. An attempt that outlives its deadline has its token
/// cancelled; the simulator checks the token cooperatively at its
/// controller barriers (see `gpu_sim::cancel`), so the worker unwinds at
/// the next epoch boundary instead of wedging the wave.
#[derive(Default)]
pub(crate) struct Watchdog {
    entries: Mutex<Vec<(CancelToken, Instant)>>,
    pub(crate) stop: AtomicBool,
}

impl Watchdog {
    fn register(&self, token: CancelToken, deadline: Duration) {
        self.entries
            .lock()
            .expect("watchdog registry")
            .push((token, Instant::now() + deadline));
    }

    fn unregister(&self, token: &CancelToken) {
        self.entries
            .lock()
            .expect("watchdog registry")
            .retain(|(t, _)| !t.same_as(token));
    }

    pub(crate) fn patrol(&self) {
        while !self.stop.load(Ordering::Relaxed) {
            let now = Instant::now();
            self.entries
                .lock()
                .expect("watchdog registry")
                .retain(|(token, due)| {
                    if now >= *due {
                        token.cancel();
                        false
                    } else {
                        true
                    }
                });
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// The deduplicated dependency closure of a requested job set, in the
/// stable execution order both the local engine and every fabric worker
/// derive independently (the fabric distributes *work*, not job
/// descriptions: each worker re-expands the same graph from the same
/// invocation — see [`crate::fabric`]).
pub(crate) struct JobGraph {
    pub(crate) by_spec: HashMap<String, SimJob>,
    pub(crate) order: Vec<String>,
}

/// Expand `jobs` to their transitive dependency closure, deduplicated by
/// canonical spec, ordered by wave then expansion order.
pub(crate) fn expand_graph(jobs: &[SimJob]) -> JobGraph {
    let mut by_spec: HashMap<String, SimJob> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut worklist: Vec<SimJob> = jobs.to_vec();
    while let Some(job) = worklist.pop() {
        let spec = job.spec_text();
        if by_spec.contains_key(&spec) {
            continue;
        }
        worklist.extend(job.deps());
        by_spec.insert(spec.clone(), job);
        order.push(spec);
    }
    // Stable order: wave, then expansion order (reversed so that the
    // originally-requested jobs come before late-discovered deps of
    // the same wave — purely cosmetic, execution is parallel anyway).
    order.sort_by_key(|s| by_spec[s].wave());
    JobGraph { by_spec, order }
}

/// Factor the declared jobs into shared prefixes and suffix runs.
///
/// Evaluation runs that differ **only** in `run_cycles` (same kernel,
/// scheme, machine, controller parameters, model and profile — i.e. the
/// same simulation trajectory observed at different horizons, which is
/// exactly what a `run_cycles` sweep axis declares) are one chained
/// simulation wearing several jobs. For each such group this emits a
/// [`SimJob::Prefix`] at every distinct horizon but the last, chains
/// them, and points every run's `prefix_chain` at the boundaries at or
/// below its own horizon: the whole ladder then costs one simulation of
/// the longest horizon instead of the sum of all of them, and each
/// suffix is bit-identical to its cold run by the snapshot oracle's
/// contract.
///
/// `snapshot_every > 0` additionally threads periodic barrier cycles
/// (multiples of the knob, below each group's longest horizon) into
/// every chain. No prefix jobs are materialised for these; runs publish
/// blobs as they pass, so an interrupted or watchdog-killed run — or a
/// fabric worker picking up its stolen lease — resumes from the last
/// checkpoint instead of cycle 0.
///
/// Random-restart runs never factor: their output averages several
/// seeded reruns of the same span, which has no single shareable
/// machine state.
///
/// Returns the number of runs that will fork from a shared prefix (the
/// `prefix_shared` figure in `run_all` reports).
pub fn factor_prefixes(jobs: &mut Vec<SimJob>, snapshot_every: u64) -> usize {
    // Group factorable runs by their horizon-free identity.
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        let SimJob::Run(r) = job else { continue };
        if r.scheme == Scheme::RandomRestart {
            continue;
        }
        groups
            .entry(SimJob::Run(r.prefix_at(0, &[])).spec_text())
            .or_default()
            .push(i);
    }
    let mut shared = 0;
    let mut prefixes: Vec<SimJob> = Vec::new();
    let mut group_keys: Vec<&String> = groups.keys().collect();
    group_keys.sort(); // deterministic emission order
    for key in group_keys {
        let idxs = &groups[key];
        let mut ladder: Vec<u64> = idxs
            .iter()
            .map(|&i| match &jobs[i] {
                SimJob::Run(r) => r.run_cycles,
                _ => unreachable!("groups hold runs only"),
            })
            .collect();
        ladder.sort_unstable();
        ladder.dedup();
        let longest = *ladder.last().expect("groups are non-empty");
        let laddered = ladder.len() >= 2;
        // The group's barrier set: every horizon but the longest, plus
        // the periodic checkpoints.
        let mut bounds: Vec<u64> = ladder[..ladder.len() - 1].to_vec();
        if snapshot_every > 0 {
            bounds.extend(
                (1..)
                    .map(|m| m * snapshot_every)
                    .take_while(|&b| b < longest),
            );
            bounds.sort_unstable();
            bounds.dedup();
        }
        if bounds.is_empty() {
            continue;
        }
        let proto = match &jobs[idxs[0]] {
            SimJob::Run(r) => r.clone(),
            _ => unreachable!("groups hold runs only"),
        };
        if laddered {
            for &b in &ladder[..ladder.len() - 1] {
                let below: Vec<u64> = bounds.iter().copied().filter(|&x| x < b).collect();
                prefixes.push(SimJob::Prefix(proto.prefix_at(b, &below)));
            }
            shared += idxs.len();
        }
        for &i in idxs {
            let SimJob::Run(r) = &mut jobs[i] else {
                unreachable!("groups hold runs only")
            };
            r.prefix_chain = bounds
                .iter()
                .copied()
                .filter(|&b| b <= r.run_cycles)
                .collect();
        }
    }
    jobs.append(&mut prefixes);
    shared
}

/// A job's cache identity, resolvable once its dependencies are in the
/// store (the key hashes dependency-output digests).
pub(crate) struct JobIdentity {
    pub(crate) kind: &'static str,
    pub(crate) spec: String,
    /// SHA-256 of the spec text alone — the stable pre-dependency
    /// identity used by fault plans, manifests and failure reports.
    pub(crate) spec_hash: String,
    /// The full cache key (spec + dependency digests).
    pub(crate) key: String,
}

/// What [`Engine::run_one`] hands back to the wave loop.
pub(crate) struct Disposition {
    pub(crate) result: Result<JobOutput, String>,
    pub(crate) was_hit: bool,
    pub(crate) wall: f64,
    /// Failed attempts, in order (empty for a clean first-attempt
    /// success or a cache hit).
    pub(crate) attempts: Vec<AttemptRecord>,
    /// The execution succeeded but the store gate refused it (the
    /// fabric's lease was stolen mid-run): the result was discarded and
    /// must not be counted as executed.
    pub(crate) lost: bool,
}

/// The experiment engine: expands, deduplicates, caches and executes
/// [`SimJob`] graphs. See the module docs.
pub struct Engine {
    pub(crate) cache: Cache,
    /// Re-fit (and re-sample) models even when cached
    /// (`POISE_RETRAIN=1`).
    pub retrain: bool,
    /// Suppress per-job progress lines.
    pub quiet: bool,
    /// Fault-injection plan for the execution seam (`None` in normal
    /// operation). Install via [`Engine::set_faults`] so the cache's
    /// store seam shares the plan.
    pub(crate) faults: Option<Arc<FaultPlan>>,
    /// Per-job deadline in seconds. When unset, a job that lost a cache
    /// entry to corruption still gets a budget derived from the entry's
    /// recorded wall time (`4×`, floored at 1 s); otherwise attempts run
    /// unbounded.
    pub deadline: Option<f64>,
    /// Maximum retries after a retryable failure (attempts = retries+1).
    pub max_retries: u32,
    /// First backoff; doubles per retry (`base × 2^attempt`).
    pub backoff_base: Duration,
    /// External observer of job lifecycle events (`None` = silent).
    /// The daemon installs one to stream per-client progress.
    pub progress: Option<Arc<dyn ProgressSink>>,
    /// Cancellation gate: `true` for a spec hash means the job was
    /// cancelled (every subscriber withdrew) and must not execute.
    /// Checked before each attempt; a veto mid-flight is classified
    /// [`FailClass::Cancelled`] (terminal). `None` = nothing vetoed.
    pub veto: Option<Arc<VetoFn>>,
    /// Cancel tokens of attempts executing right now, by spec hash —
    /// [`Engine::cancel_spec`] cancels through here so a cooperative
    /// cancellation interrupts the running simulation at its next
    /// barrier instead of waiting the attempt out.
    inflight: Mutex<HashMap<String, CancelToken>>,
}

/// Detail payload for [`Engine::emit`] (attempt count, wall, error).
#[derive(Default)]
pub(crate) struct EventDetail {
    pub(crate) attempts: u32,
    pub(crate) wall: f64,
    pub(crate) error: Option<String>,
}

/// One resolved prefix barrier: the cycle and the cache coordinates of
/// the [`SimJob::Prefix`] output at that barrier.
struct PrefixPoint {
    cycles: u64,
    key: String,
    spec: String,
}

/// The engine's [`PrefixStore`]: snapshot blobs are ordinary cache
/// entries (kind `prefix`), so prefix sharing inherits the cache's whole
/// story — content addressing, checksums, corruption quarantine, fsck,
/// gc, and cross-worker sharing through the fabric's shared directory.
struct PrefixIo<'a> {
    cache: &'a Cache,
    boundaries: Vec<u64>,
    points: Vec<PrefixPoint>,
    /// Job start, so published blobs record the wall time actually spent
    /// reaching their barrier (the deadline heuristics read it back).
    t0: Instant,
}

impl PrefixStore for PrefixIo<'_> {
    fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    fn load(&self, cycles: u64) -> Option<String> {
        let p = self.points.iter().find(|p| p.cycles == cycles)?;
        match self.cache.lookup("prefix", &p.key) {
            // Re-validate through the output parser (structure + snapshot
            // grammar); a stale or damaged body degrades to a miss and
            // the runner re-simulates the span.
            Lookup::Hit(body, _) => JobOutput::from_text("prefix", &body)
                .is_some()
                .then_some(body),
            // `lookup` already quarantined the entry (self-healing): the
            // next prefix job to want this barrier re-runs and re-stores.
            Lookup::Corrupt { .. } | Lookup::Miss => None,
        }
    }

    fn store(&self, cycles: u64, blob: &str) {
        if let Some(p) = self.points.iter().find(|p| p.cycles == cycles) {
            self.cache.store(
                "prefix",
                &p.key,
                &p.spec,
                blob,
                self.t0.elapsed().as_secs_f64(),
            );
        }
    }
}

impl Engine {
    /// An engine whose cache lives under `cache_root`.
    pub fn new(cache_root: impl Into<PathBuf>) -> Self {
        Engine {
            cache: Cache::new(cache_root),
            retrain: false,
            quiet: false,
            faults: None,
            deadline: None,
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            progress: None,
            veto: None,
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// An engine honouring the `POISE_RERUN` / `POISE_RETRAIN`
    /// environment knobs, with its cache under `<results_dir>/cache`.
    pub fn from_env(results_dir: &std::path::Path) -> Self {
        let mut e = Engine::new(results_dir.join("cache"));
        e.cache.bypass = std::env::var("POISE_RERUN").is_ok();
        e.retrain = std::env::var("POISE_RETRAIN").is_ok();
        e
    }

    /// The underlying cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Install (or clear) a fault-injection plan, shared between the
    /// execution seam here and the cache's store seam.
    pub fn set_faults(&mut self, plan: Option<FaultPlan>) {
        let plan = plan.map(Arc::new);
        self.cache.set_faults(plan.clone());
        self.faults = plan;
    }

    /// The installed fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }

    /// Emit one lifecycle event through the progress sink, if any.
    pub(crate) fn emit(&self, label: &str, spec_hash: &str, status: JobStatus, d: EventDetail) {
        if let Some(sink) = &self.progress {
            sink.job_event(&JobEvent {
                label: label.to_string(),
                spec_hash: spec_hash.to_string(),
                status,
                attempts: d.attempts,
                wall: d.wall,
                error: d.error,
            });
        }
    }

    /// Whether the veto gate refuses `spec_hash` (its submission was
    /// cancelled). `None` gate = nothing vetoed.
    fn vetoed(&self, spec_hash: &str) -> bool {
        self.veto.as_ref().is_some_and(|v| v(spec_hash))
    }

    /// Cooperatively cancel the attempt of `spec_hash` executing right
    /// now, if any: its token is cancelled, so the simulation unwinds
    /// at the next controller barrier. Pair with a [`Engine::veto`]
    /// gate that refuses the hash, or the engine will simply retry.
    pub fn cancel_spec(&self, spec_hash: &str) {
        if let Some(token) = self
            .inflight
            .lock()
            .expect("inflight registry")
            .get(spec_hash)
        {
            token.cancel();
        }
    }

    /// Offline re-validation of every cache entry (`run_all --fsck`):
    /// header, key, end marker, checksum, plus a full deserialisation
    /// round-trip of the body. Invalid entries are quarantined.
    pub fn fsck(&self) -> std::io::Result<FsckReport> {
        self.cache
            .fsck(&|kind, body| JobOutput::from_text(kind, body).is_some())
    }

    /// Execute `jobs` (plus their transitive dependencies), deduplicated,
    /// across the host's cores. Never panics on job failure: failed jobs
    /// (and their dependants) surface in the report and as `Err` entries
    /// in the store.
    pub fn run(&self, jobs: &[SimJob]) -> (ResultStore, RunReport) {
        let t0 = Instant::now();
        let JobGraph { by_spec, order } = expand_graph(jobs);
        let total = order.len();

        let mut store = ResultStore::default();
        let mut report = RunReport {
            total,
            ..RunReport::default()
        };
        let done = AtomicUsize::new(0);
        let (corrupt0, quarantined0) = (
            self.cache.stats.corrupt_count(),
            self.cache.stats.quarantined_count(),
        );

        // One watchdog patrol thread for the whole run; registrations
        // come and go per attempt.
        let watchdog = Arc::new(Watchdog::default());
        let patrol = {
            let w = Arc::clone(&watchdog);
            std::thread::spawn(move || w.patrol())
        };

        // Distinct waves actually present, ascending: the classic three
        // (leaves → fits → runs) plus one wave per prefix-chain depth
        // when the plan was prefix-factored.
        let mut waves: Vec<usize> = order.iter().map(|s| by_spec[s].wave()).collect();
        waves.sort_unstable();
        waves.dedup();
        for wave in waves {
            let wave_jobs: Vec<&SimJob> = order
                .iter()
                .map(|s| &by_spec[s])
                .filter(|j| j.wave() == wave)
                .collect();
            let results: Vec<(String, Disposition)> =
                crate::parallel::parallel_map(&wave_jobs, |job| {
                    let jt = Instant::now();
                    let d = self.run_one(job, &store, &watchdog, 0, None);
                    let i = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if !self.quiet {
                        let status = match (&d.result, d.was_hit) {
                            (Ok(_), true) => "hit".to_string(),
                            (Ok(_), false) if d.attempts.is_empty() => {
                                format!("ran {:.2}s", jt.elapsed().as_secs_f64())
                            }
                            (Ok(_), false) => format!(
                                "ran {:.2}s (recovered after {} failed attempt(s))",
                                jt.elapsed().as_secs_f64(),
                                d.attempts.len()
                            ),
                            (Err(e), _) => format!("FAILED: {e}"),
                        };
                        eprintln!("[engine] {i}/{total} {} {status}", job.label());
                    }
                    (job.spec_text(), d)
                });
            for (spec, d) in results {
                let label = by_spec[&spec].label();
                match (&d.result, d.attempts.as_slice()) {
                    (Ok(_), []) if d.was_hit => report.cache_hits += 1,
                    (Ok(_), []) => report.executed += 1,
                    (Ok(_), _) => {
                        report.executed += 1;
                        report.retried += 1;
                        report.recovered += 1;
                        report.trouble.push(JobTrouble {
                            label,
                            spec_hash: sha256_hex(&spec),
                            worker: "local".to_string(),
                            attempts: d.attempts,
                            outcome: JobOutcome::Recovered,
                        });
                    }
                    (Err(e), attempts) => {
                        report.failed.push((label.clone(), e.clone()));
                        let timed_out = attempts
                            .last()
                            .is_some_and(|a| a.class == FailClass::Timeout);
                        if timed_out {
                            report.timed_out += 1;
                        }
                        if attempts.len() > 1 {
                            report.retried += 1;
                        }
                        report.trouble.push(JobTrouble {
                            label,
                            spec_hash: sha256_hex(&spec),
                            worker: "local".to_string(),
                            attempts: d.attempts,
                            outcome: if timed_out {
                                JobOutcome::TimedOut
                            } else {
                                JobOutcome::Failed
                            },
                        });
                    }
                }
                if d.result.is_ok() {
                    store.walls.insert(spec.clone(), d.wall);
                }
                store.outputs.insert(spec, d.result);
            }
        }

        watchdog.stop.store(true, Ordering::Relaxed);
        let _ = patrol.join();

        report.corrupt = self.cache.stats.corrupt_count() - corrupt0;
        report.quarantined = self.cache.stats.quarantined_count() - quarantined0;
        report.wall = t0.elapsed();
        if !self.quiet {
            eprintln!("[engine] {}", report.summary_line());
        }
        (store, report)
    }

    /// Resolve a job's cache identity against `store` (dependencies must
    /// already be resolved there — their output digests enter the key).
    /// `Err` carries the dependency-failure message.
    pub(crate) fn identify(
        &self,
        job: &SimJob,
        store: &ResultStore,
    ) -> Result<JobIdentity, String> {
        let mut dep_digests = String::new();
        for dep in &job.deps() {
            match store.get(dep) {
                Ok(o) => dep_digests.push_str(&format!("dep {}\n", job.dep_digest(dep, o))),
                Err(e) => return Err(format!("dependency {} failed: {e}", dep.label())),
            }
        }
        let spec = job.spec_text();
        Ok(JobIdentity {
            kind: job.kind(),
            spec_hash: sha256_hex(&spec),
            key: sha256_hex(&format!("{CACHE_VERSION}\n{spec}--deps--\n{dep_digests}")),
            spec,
        })
    }

    /// Resolve a job's prefix chain to concrete cache coordinates: each
    /// barrier cycle maps to the synthetic [`SimJob::Prefix`] at that
    /// boundary, identified exactly like a real job (spec text + dep
    /// digests), so a chain entry and the standalone prefix job the
    /// factoring emitted address the same cache entry — on this worker
    /// or any other sharing the cache. `None` when the job has no chain
    /// (or its deps failed, in which case `run_one` fails first anyway);
    /// the job then runs cold.
    fn prefix_io(&self, job: &SimJob, store: &ResultStore) -> Option<PrefixIo<'_>> {
        let r = match job {
            SimJob::Run(r) | SimJob::Prefix(r) => r,
            _ => return None,
        };
        if r.prefix_chain.is_empty() {
            return None;
        }
        let mut points = Vec::with_capacity(r.prefix_chain.len());
        for (i, &cycles) in r.prefix_chain.iter().enumerate() {
            let synth = SimJob::Prefix(r.prefix_at(cycles, &r.prefix_chain[..i]));
            let id = self.identify(&synth, store).ok()?;
            points.push(PrefixPoint {
                cycles,
                key: id.key,
                spec: id.spec,
            });
        }
        Some(PrefixIo {
            cache: &self.cache,
            boundaries: r.prefix_chain.clone(),
            points,
            t0: Instant::now(),
        })
    }

    /// Run (or load) one job whose dependencies are already in `store`,
    /// with bounded retry for transient failures and timeouts, a
    /// watchdog deadline per attempt, and injected execution faults when
    /// a plan is installed.
    ///
    /// `start_attempt` seeds the cumulative attempt counter: the fabric
    /// passes the count carried in a stolen lease so fault-plan
    /// occurrence indexing, backoff and the retry budget span process
    /// boundaries; the local engine passes 0. `store_gate`, when given,
    /// is consulted immediately before the cache store — a `false`
    /// verdict (the fabric's lease was stolen while we ran) discards the
    /// result (`Disposition::lost`) instead of double-committing it.
    pub(crate) fn run_one(
        &self,
        job: &SimJob,
        store: &ResultStore,
        watchdog: &Watchdog,
        start_attempt: u32,
        store_gate: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Disposition {
        let fail = |attempts: Vec<AttemptRecord>, error: String| Disposition {
            result: Err(error),
            was_hit: false,
            wall: 0.0,
            attempts,
            lost: false,
        };

        let identity = match self.identify(job, store) {
            Ok(i) => i,
            Err(error) => {
                self.emit(
                    &job.label(),
                    &sha256_hex(&job.spec_text()),
                    JobStatus::Failed,
                    EventDetail {
                        error: Some(error.clone()),
                        ..EventDetail::default()
                    },
                );
                return fail(
                    vec![AttemptRecord {
                        class: FailClass::Dependency,
                        error: error.clone(),
                        backoff_ms: 0,
                        wall_ms: 0,
                    }],
                    error,
                );
            }
        };
        let deps = job.deps();
        let dep_outputs: Vec<&JobOutput> = deps
            .iter()
            .map(|d| store.get(d).expect("identify() checked every dep"))
            .collect();
        let JobIdentity {
            kind, spec, key, ..
        } = identity;
        let skip_cache = self.retrain && matches!(job, SimJob::Train(_) | SimJob::Sample(_));
        // Wall seconds recorded by a prior execution whose entry was just
        // quarantined — the best deadline budget for the re-run.
        let mut prior_wall: Option<f64> = None;
        if !skip_cache {
            match self.cache.lookup(kind, &key) {
                Lookup::Hit(body, wall) => {
                    if let Some(out) = JobOutput::from_text(kind, &body) {
                        self.emit(
                            &job.label(),
                            &sha256_hex(&spec),
                            JobStatus::Hit,
                            EventDetail {
                                wall,
                                ..EventDetail::default()
                            },
                        );
                        return Disposition {
                            result: Ok(out),
                            was_hit: true,
                            wall,
                            attempts: Vec::new(),
                            lost: false,
                        };
                    }
                    // Checksum-valid but semantically stale (format
                    // evolution): fall through and re-execute; the store
                    // below overwrites the entry.
                }
                Lookup::Corrupt { prior_wall: w } => prior_wall = w,
                Lookup::Miss => {}
            }
        }

        // Deadline: the explicit knob wins; else a corrupt entry's
        // recorded wall gives a generous budget (4×, floored at 1 s);
        // else attempts run unbounded.
        let deadline = self
            .deadline
            .or_else(|| prior_wall.map(|w| (4.0 * w).max(1.0)));
        let prefixes = self.prefix_io(job, store);
        let spec_hash = sha256_hex(&spec);
        let label = job.label();
        let mut attempts: Vec<AttemptRecord> = Vec::new();

        loop {
            // Cumulative across lease owners: a stolen job resumes the
            // dead owner's count rather than restarting the budget.
            let attempt = start_attempt + attempts.len() as u32;
            // The veto gate: a cancelled submission's jobs stop here —
            // before the first attempt, and between retries.
            if self.vetoed(&spec_hash) {
                let error = "cancelled: submission withdrawn".to_string();
                attempts.push(AttemptRecord {
                    class: FailClass::Cancelled,
                    error: error.clone(),
                    backoff_ms: 0,
                    wall_ms: 0,
                });
                self.emit(
                    &label,
                    &spec_hash,
                    JobStatus::Cancelled,
                    EventDetail {
                        attempts: attempt,
                        error: Some(error.clone()),
                        ..EventDetail::default()
                    },
                );
                return fail(attempts, error);
            }
            let injected = self
                .faults
                .as_ref()
                .and_then(|p| p.exec_fault(&spec_hash, attempt));
            // A stall is only meaningful under a watchdog: without a
            // deadline nothing would ever cancel it and the wave would
            // wedge, so it degrades to a transient error.
            let injected = match injected {
                Some(FaultKind::Stall) if deadline.is_none() => Some(FaultKind::Transient),
                other => other,
            };

            let token = CancelToken::new();
            let guard = gpu_sim::cancel::install(Some(token.clone()));
            if let Some(d) = deadline {
                watchdog.register(token.clone(), Duration::from_secs_f64(d));
            }
            self.inflight
                .lock()
                .expect("inflight registry")
                .insert(spec_hash.clone(), token.clone());
            self.emit(
                &label,
                &spec_hash,
                JobStatus::Started,
                EventDetail {
                    attempts: attempt,
                    ..EventDetail::default()
                },
            );
            let t0 = Instant::now();
            let executed = catch_unwind(AssertUnwindSafe(|| -> Result<JobOutput, String> {
                match injected {
                    Some(FaultKind::Panic) => panic!("injected fault: panic"),
                    Some(FaultKind::Transient) => {
                        return Err("injected fault: transient error".to_string())
                    }
                    Some(FaultKind::Stall) => {
                        // A wedged worker: burn time until the watchdog
                        // cancels the attempt.
                        while !token.is_cancelled() {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        return Err("injected fault: stall".to_string());
                    }
                    _ => {}
                }
                Ok(job.execute(&dep_outputs, prefixes.as_ref()))
            }));
            watchdog.unregister(&token);
            self.inflight
                .lock()
                .expect("inflight registry")
                .remove(&spec_hash);
            drop(guard);
            let wall = t0.elapsed().as_secs_f64();
            let cancelled = token.is_cancelled();

            // Success: store, canonicalise, return — unless the watchdog
            // fired mid-run, in which case the output is from a cancelled
            // (possibly early-returned) simulation and must be discarded.
            if let Ok(Ok(out)) = &executed {
                if !cancelled {
                    // The gate is the fabric's lease-ownership check: if
                    // our claim was stolen while we executed, another
                    // worker owns this key now — discard instead of
                    // double-committing.
                    if let Some(gate) = store_gate {
                        if !gate() {
                            return Disposition {
                                result: Err(
                                    "store discarded: lease lost to another worker".to_string()
                                ),
                                was_hit: false,
                                wall,
                                attempts,
                                lost: true,
                            };
                        }
                    }
                    let body = out.to_text();
                    self.cache.store(kind, &key, &spec, &body, wall);
                    // Canonicalise through the serialisation so a cold
                    // run returns bit-identical values to a later warm
                    // run. A non-round-tripping output is a bug in the
                    // job's serialiser, but it must fail *this job*, not
                    // panic past the engine's isolation.
                    return match JobOutput::from_text(kind, &body) {
                        Some(canonical) => {
                            self.emit(
                                &label,
                                &spec_hash,
                                if attempts.is_empty() {
                                    JobStatus::Done
                                } else {
                                    JobStatus::Recovered
                                },
                                EventDetail {
                                    attempts: attempts.len() as u32,
                                    wall,
                                    error: None,
                                },
                            );
                            Disposition {
                                result: Ok(canonical),
                                was_hit: false,
                                wall,
                                attempts,
                                lost: false,
                            }
                        }
                        None => {
                            let error = format!(
                                "{} produced output that does not round-trip through its \
                                 serialisation (engine bug)",
                                job.label()
                            );
                            self.emit(
                                &label,
                                &spec_hash,
                                JobStatus::Failed,
                                EventDetail {
                                    attempts: attempts.len() as u32,
                                    wall,
                                    error: Some(error.clone()),
                                },
                            );
                            fail(attempts, error)
                        }
                    };
                }
            }

            // Classify the failure. A cancelled token with a vetoing
            // gate is a cooperative cancellation (`Engine::cancel_spec`),
            // not a watchdog timeout.
            let (class, error) = match executed {
                _ if cancelled && self.vetoed(&spec_hash) => (
                    FailClass::Cancelled,
                    format!("cancelled mid-run after {wall:.1}s: submission withdrawn"),
                ),
                _ if cancelled => (
                    FailClass::Timeout,
                    format!(
                        "timed out after {:.1}s (deadline {:.1}s)",
                        wall,
                        deadline.unwrap_or(0.0)
                    ),
                ),
                Ok(Err(e)) => (FailClass::Transient, e),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "job panicked".to_string());
                    (FailClass::Panic, msg)
                }
                Ok(Ok(_)) => unreachable!("uncancelled success returned above"),
            };

            let retryable = matches!(class, FailClass::Transient | FailClass::Timeout);
            let exhausted = attempt >= self.max_retries;
            if !retryable || exhausted {
                attempts.push(AttemptRecord {
                    class,
                    error: error.clone(),
                    backoff_ms: 0,
                    wall_ms: (wall * 1000.0) as u64,
                });
                let prefix = match class {
                    FailClass::Timeout => String::new(),
                    _ if attempt > 0 => format!("after {} attempts: ", attempt + 1),
                    _ => String::new(),
                };
                let error = format!("{prefix}{error}");
                self.emit(
                    &label,
                    &spec_hash,
                    if class == FailClass::Cancelled {
                        JobStatus::Cancelled
                    } else {
                        JobStatus::Failed
                    },
                    EventDetail {
                        attempts: attempts.len() as u32,
                        wall,
                        error: Some(error.clone()),
                    },
                );
                return fail(attempts, error);
            }
            let backoff = self.backoff_base * 2u32.saturating_pow(attempt);
            self.emit(
                &label,
                &spec_hash,
                JobStatus::Retried,
                EventDetail {
                    attempts: attempt + 1,
                    wall,
                    error: Some(error.clone()),
                },
            );
            attempts.push(AttemptRecord {
                class,
                error,
                backoff_ms: backoff.as_millis() as u64,
                wall_ms: (wall * 1000.0) as u64,
            });
            std::thread::sleep(backoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{AccessMix, KernelSpec};

    fn tmp_engine(tag: &str) -> (Engine, PathBuf) {
        let dir = std::env::temp_dir().join(format!("poise-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut e = Engine::new(&dir);
        e.quiet = true;
        (e, dir)
    }

    fn tiny_setup() -> Setup {
        let mut s = Setup::for_tests();
        s.run_cycles = 10_000;
        s.eval_grid = GridSpec::diagonal(6);
        s.profile_window = ProfileWindow {
            warmup: 200,
            measure: 800,
        };
        s
    }

    fn kernel(seed: u64) -> Workload {
        KernelSpec::steady(format!("jk{seed}"), AccessMix::memory_sensitive(), seed).into()
    }

    #[test]
    fn duplicate_jobs_execute_once_and_second_run_hits() {
        let (engine, dir) = tmp_engine("dedup");
        let setup = tiny_setup();
        // The same GTO run requested three times, plus one distinct run.
        let gto = SimJob::Run(KernelRunSpec::new(&kernel(1), Scheme::Gto, &setup, None));
        let other = SimJob::Run(KernelRunSpec::new(&kernel(2), Scheme::Gto, &setup, None));
        let jobs = vec![gto.clone(), gto.clone(), other, gto.clone()];
        let (store, report) = engine.run(&jobs);
        assert_eq!(report.total, 2, "duplicates must deduplicate");
        assert_eq!(report.executed, 2);
        assert_eq!(report.cache_hits, 0);
        assert!(store.get(&gto).is_ok());
        // Second run: everything from cache, zero simulations.
        let (store2, report2) = engine.run(&jobs);
        assert_eq!(report2.executed, 0);
        assert_eq!(report2.cache_hits, 2);
        let a = store.get(&gto).unwrap().as_run().unwrap();
        let b = store2.get(&gto).unwrap().as_run().unwrap();
        assert_eq!(a.counters, b.counters, "cache hit must be bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_driven_run_resolves_its_dependency() {
        let (engine, dir) = tmp_engine("deps");
        let setup = tiny_setup();
        let job = SimJob::Run(KernelRunSpec::new(&kernel(3), Scheme::Swl, &setup, None));
        let (store, report) = engine.run(std::slice::from_ref(&job));
        // The profile dependency was discovered and executed too.
        assert_eq!(report.total, 2);
        assert_eq!(report.executed, 2);
        let run = store.get(&job).unwrap().as_run().unwrap();
        assert!(run.counters.instructions > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_job_is_isolated_and_dependants_fail_gracefully() {
        let (engine, dir) = tmp_engine("panic");
        // An invalid kernel (no phases) makes the profiler panic.
        let bad: Workload = KernelSpec {
            name: "bad".into(),
            warps_per_scheduler: 4,
            phases: Vec::new(),
            trace_len: None,
            seed: 0,
        }
        .into();
        let setup = tiny_setup();
        let bad_job = SimJob::Run(KernelRunSpec::new(&bad, Scheme::Swl, &setup, None));
        let good_job = SimJob::Run(KernelRunSpec::new(&kernel(4), Scheme::Gto, &setup, None));
        let (store, report) = engine.run(&[bad_job.clone(), good_job.clone()]);
        // The profile panics; the dependant run fails with a dependency
        // error; the unrelated job still completes.
        assert_eq!(report.failed.len(), 2);
        assert!(store.get(&good_job).is_ok());
        let err = store.get(&bad_job).unwrap_err();
        assert!(err.contains("dependency"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_perturbations_miss_the_cache() {
        let (engine, dir) = tmp_engine("perturb");
        let setup = tiny_setup();
        let base = KernelRunSpec::new(&kernel(5), Scheme::Gto, &setup, None);
        let (_, r0) = engine.run(&[SimJob::Run(base.clone())]);
        assert_eq!(r0.executed, 1);

        // Each perturbation of the job spec must be a miss.
        let mut cycles = base.clone();
        cycles.run_cycles += 1;
        let mut cfg = base.clone();
        cfg.cfg.l1_mshrs += 1;
        let mut kern = base.clone();
        kern.workload.synthetic_mut().unwrap().seed += 1;
        let mut sched = base.clone();
        sched.scheme = Scheme::RandomRestart;
        sched.t_period = Some(5_000);
        sched.rr_seeds = vec![1];
        for (i, variant) in [cycles, cfg, kern, sched].into_iter().enumerate() {
            let (_, r) = engine.run(&[SimJob::Run(variant)]);
            assert_eq!(r.executed, 1, "perturbation {i} should re-run");
        }
        // And the unperturbed spec still hits.
        let (_, r1) = engine.run(&[SimJob::Run(base)]);
        assert_eq!((r1.executed, r1.cache_hits), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entries_re_run_and_are_quarantined() {
        let (engine, dir) = tmp_engine("corrupt");
        let setup = tiny_setup();
        let job = SimJob::Run(KernelRunSpec::new(&kernel(6), Scheme::Gto, &setup, None));
        let (store, _) = engine.run(std::slice::from_ref(&job));
        let want = store.get(&job).unwrap().as_run().unwrap().counters;
        // Truncate / garble every cache file.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_file() {
                std::fs::write(entry.path(), "# poise job cache v1\ngarbage").unwrap();
            }
        }
        let (store2, r2) = engine.run(std::slice::from_ref(&job));
        assert_eq!(r2.executed, 1, "corrupt entry must re-run, not panic");
        assert_eq!(r2.corrupt, 1, "corruption must be counted, not silent");
        assert_eq!(r2.quarantined, 1);
        assert!(
            engine.cache().quarantine_root().read_dir().unwrap().count() == 1,
            "the garbled entry is preserved under quarantine/"
        );
        assert_eq!(
            store2.get(&job).unwrap().as_run().unwrap().counters,
            want,
            "re-run must reproduce the result"
        );
        // The healed store is clean: a third run hits, an fsck agrees.
        let (_, r3) = engine.run(std::slice::from_ref(&job));
        assert_eq!((r3.executed, r3.cache_hits, r3.corrupt), (0, 1, 0));
        let report = engine.fsck().unwrap();
        assert_eq!(report.corrupt, 0);
        assert_eq!(report.valid, report.scanned);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outputs_round_trip_through_text() {
        // Grid.
        let mut g = SpeedupGrid::new(4);
        g.set(3, 2, 1.23456789012345);
        g.set(4, 4, 1.0);
        let t = JobOutput::Grid(g.clone()).to_text();
        let back = JobOutput::from_text("profile", &t).unwrap();
        assert_eq!(back.as_grid().unwrap().get(3, 2), g.get(3, 2));
        // Model.
        let m = TrainedModel {
            alpha: [0.1, -0.2, 0.3, 0.0, 1.5, -2.0, 0.004, 1.6],
            beta: [3.7, 0.48, -6.3, 10.3, -6.5, -0.9, 0.08, -2.1],
            dispersion_n: 0.12,
            dispersion_p: 0.34,
            samples_used: 42,
            dropped_features: vec![2, 5],
        };
        let t = JobOutput::Model(m.clone()).to_text();
        let back = JobOutput::from_text("train", &t).unwrap();
        let m2 = back.as_model().unwrap();
        assert_eq!(m.alpha, m2.alpha);
        assert_eq!(m.beta, m2.beta);
        assert_eq!(m.dropped_features, m2.dropped_features);
        // Run with epoch logs.
        let r = KernelRun {
            kernel: "k#1".into(),
            counters: Counters {
                cycles: 100,
                instructions: 42,
                ..Counters::default()
            },
            energy: EnergyBreakdown {
                alu: 1.0,
                l1: 2.0,
                l2: 3.0,
                dram: 4.5,
                leakage: 6.25,
            },
            epoch_logs: vec![crate::hie::EpochLog {
                cycle: 7,
                predicted: WarpTuple { n: 8, p: 2 },
                searched: WarpTuple { n: 6, p: 3 },
                early_out: false,
            }],
        };
        let t = JobOutput::Run(r.clone()).to_text();
        let back = JobOutput::from_text("run", &t).unwrap();
        let r2 = back.as_run().unwrap();
        assert_eq!(r.counters, r2.counters);
        assert_eq!(r.epoch_logs, r2.epoch_logs);
        assert_eq!(r.energy, r2.energy);
        // Truncated bodies parse to None, not panic.
        assert!(JobOutput::from_text("run", "kernel k\n").is_none());
        assert!(JobOutput::from_text("train", "alpha 1 2\n").is_none());
        // Out-of-range grid cells (corrupt bodies) must be rejected
        // before reaching SpeedupGrid's asserting constructor/setter —
        // a panic here would escape the engine's per-job isolation.
        assert!(JobOutput::from_text("profile", "max_n 0\n").is_none());
        assert!(JobOutput::from_text("profile", "max_n 4\ncell 0 0 1.0\n").is_none());
        assert!(JobOutput::from_text("profile", "max_n 4\ncell 3 0 1.0\n").is_none());
        assert!(JobOutput::from_text("profile", "max_n 4\ncell 5 1 1.0\n").is_none());
    }

    #[test]
    fn editing_a_trace_file_invalidates_only_that_workloads_jobs() {
        use workloads::{record_kernel, TraceRef};
        let (engine, dir) = tmp_engine("trace-edit");
        let setup = tiny_setup();
        let trace_path = dir.join("k.trace");
        let record = |seed: u64| {
            let spec = KernelSpec::steady("tk", AccessMix::memory_sensitive(), seed).with_warps(4);
            let data = record_kernel(&spec, "tk", 1, setup.cfg.schedulers_per_sm, 2_000);
            Workload::from(TraceRef::write(&data, &trace_path).unwrap())
        };

        let trace_a = record(1);
        let synth = kernel(9);
        let jobs = |t: &Workload| {
            vec![
                SimJob::Run(KernelRunSpec::new(t, Scheme::Gto, &setup, None)),
                SimJob::Run(KernelRunSpec::new(&synth, Scheme::Gto, &setup, None)),
            ]
        };
        let (_, r1) = engine.run(&jobs(&trace_a));
        assert_eq!((r1.executed, r1.cache_hits), (2, 0));

        // Unchanged file, reloaded: both jobs hit.
        let reloaded = Workload::from(TraceRef::load(&trace_path).unwrap());
        assert_eq!(reloaded.spec_line(), trace_a.spec_line());
        let (_, r2) = engine.run(&jobs(&reloaded));
        assert_eq!((r2.executed, r2.cache_hits), (0, 2));

        // Edited file: only the trace workload's job re-runs; the
        // synthetic job still answers from cache.
        let trace_b = record(2);
        assert_ne!(trace_b.spec_line(), trace_a.spec_line());
        let (_, r3) = engine.run(&jobs(&trace_b));
        assert_eq!((r3.executed, r3.cache_hits), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_untouched_drops_jobs_outside_the_current_set() {
        let (engine, dir) = tmp_engine("gc");
        let setup = tiny_setup();
        let a = SimJob::Run(KernelRunSpec::new(&kernel(11), Scheme::Gto, &setup, None));
        let b = SimJob::Run(KernelRunSpec::new(&kernel(12), Scheme::Gto, &setup, None));
        engine.run(&[a.clone(), b.clone()]);

        // A later engine (fresh touched set) only runs job `a` — e.g.
        // after `b`'s kernel was edited out of the suites — and gc's.
        let mut engine2 = Engine::new(&dir);
        engine2.quiet = true;
        let (_, r) = engine2.run(std::slice::from_ref(&a));
        assert_eq!(r.cache_hits, 1);
        let (removed, kept) = engine2.cache().prune_untouched().unwrap();
        assert_eq!((removed, kept), (1, 1), "b's entry goes, a's stays");
        // `a` still hits afterwards; `b` re-runs.
        let mut engine3 = Engine::new(&dir);
        engine3.quiet = true;
        let (_, r) = engine3.run(&[a, b]);
        assert_eq!((r.executed, r.cache_hits), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_and_fsck_cover_prefix_blobs() {
        let setup = tiny_setup();
        let mut factored: Vec<SimJob> = [4_000u64, 8_000]
            .iter()
            .map(|&c| run_at(17, Scheme::Gto, c, &setup))
            .collect();
        factor_prefixes(&mut factored, 0);
        // 3 entries on disk: both runs and the 4k blob. fsck validates
        // blob structure and snapshot grammar.
        let (engine, dir) = tmp_engine("prefix-gc");
        engine.run(&factored);
        assert_eq!(engine.fsck().unwrap().corrupt, 0);
        // gc: a later engine that only wants the short horizon keeps its
        // run but drops the unreferenced blob and the long run.
        let mut engine2 = Engine::new(&dir);
        engine2.quiet = true;
        let (_, r) = engine2.run(std::slice::from_ref(&factored[0]));
        assert_eq!(r.cache_hits, 1);
        let (removed, kept) = engine2.cache().prune_untouched().unwrap();
        assert_eq!((removed, kept), (2, 1), "blob + long run go, short stays");
        // A factored pass touches everything it re-creates or hits, so
        // gc right after it removes nothing.
        let mut engine3 = Engine::new(&dir);
        engine3.quiet = true;
        engine3.run(&factored);
        let (removed, kept) = engine3.cache().prune_untouched().unwrap();
        assert_eq!(removed, 0);
        assert_eq!(kept, 3, "2 runs + 1 blob all live");
        // fsck quarantines a damaged blob like any other entry.
        let blob_path = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| {
                p.is_file()
                    && p.file_name()
                        .is_some_and(|n| n.to_string_lossy().starts_with("prefix-"))
            })
            .expect("the factored run stored a prefix blob");
        std::fs::write(&blob_path, "# poise job cache v1\ngarbage").unwrap();
        let fsck = engine3.fsck().unwrap();
        assert_eq!(fsck.corrupt, 1);
        assert!(!blob_path.exists(), "fsck quarantines the casualty");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The lowest plan seed for which the given predicate holds — used
    /// to pin deterministic fault patterns against a concrete job's spec
    /// hash (no run-time entropy anywhere).
    fn find_seed(
        rate: f64,
        kinds: &[crate::faults::FaultKind],
        pred: impl Fn(&crate::faults::FaultPlan) -> bool,
    ) -> crate::faults::FaultPlan {
        (0..10_000u64)
            .map(|s| crate::faults::FaultPlan::new(s, rate).with_kinds(kinds))
            .find(pred)
            .expect("a seed with the wanted fault pattern exists")
    }

    #[test]
    fn transient_failures_retry_with_backoff_and_recover() {
        use crate::faults::FaultKind;
        let setup = tiny_setup();
        let job = SimJob::Run(KernelRunSpec::new(&kernel(21), Scheme::Gto, &setup, None));
        // Fault-free baseline in a separate store.
        let (baseline_engine, base_dir) = tmp_engine("transient-base");
        let (store0, _) = baseline_engine.run(std::slice::from_ref(&job));
        let want = store0.get(&job).unwrap().as_run().unwrap().counters;

        let spec_hash = sha256_hex(&job.spec_text());
        let plan = find_seed(0.6, &[FaultKind::Transient], |p| {
            p.exec_fault(&spec_hash, 0).is_some() && p.exec_fault(&spec_hash, 1).is_none()
        });
        let (mut engine, dir) = tmp_engine("transient");
        engine.backoff_base = Duration::from_millis(1);
        engine.set_faults(Some(plan));
        let (store, report) = engine.run(std::slice::from_ref(&job));
        assert!(
            report.failed.is_empty(),
            "retry must recover: {:?}",
            report.failed
        );
        assert_eq!(
            (report.retried, report.recovered, report.timed_out),
            (1, 1, 0)
        );
        assert_eq!(report.trouble.len(), 1);
        let t = &report.trouble[0];
        assert_eq!(t.outcome, JobOutcome::Recovered);
        assert_eq!(t.attempts.len(), 1);
        assert_eq!(t.attempts[0].class, FailClass::Transient);
        assert!(t.attempts[0].backoff_ms >= 1, "backoff recorded");
        assert_eq!(
            store.get(&job).unwrap().as_run().unwrap().counters,
            want,
            "recovered output must be bit-identical to the fault-free run"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&base_dir);
    }

    #[test]
    fn injected_panic_is_terminal_no_retry() {
        use crate::faults::FaultKind;
        let setup = tiny_setup();
        let job = SimJob::Run(KernelRunSpec::new(&kernel(22), Scheme::Gto, &setup, None));
        let (mut engine, dir) = tmp_engine("panic-terminal");
        engine.backoff_base = Duration::from_millis(1);
        // rate 1.0: every attempt would fire — the proof of no-retry is
        // that exactly one attempt happened.
        engine.set_faults(Some(
            crate::faults::FaultPlan::new(0, 1.0).with_kinds(&[FaultKind::Panic]),
        ));
        let (store, report) = engine.run(std::slice::from_ref(&job));
        assert_eq!(report.failed.len(), 1);
        assert_eq!(
            (report.retried, report.recovered, report.timed_out),
            (0, 0, 0)
        );
        let t = &report.trouble[0];
        assert_eq!(t.outcome, JobOutcome::Failed);
        assert_eq!(t.attempts.len(), 1, "panics must not be retried");
        assert_eq!(t.attempts[0].class, FailClass::Panic);
        assert!(t.attempts[0].error.contains("injected fault: panic"));
        assert!(store.get(&job).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_exhaustion_is_a_terminal_failure() {
        use crate::faults::FaultKind;
        let setup = tiny_setup();
        let job = SimJob::Run(KernelRunSpec::new(&kernel(23), Scheme::Gto, &setup, None));
        let (mut engine, dir) = tmp_engine("exhaust");
        engine.backoff_base = Duration::from_millis(1);
        engine.max_retries = 2;
        engine.set_faults(Some(
            crate::faults::FaultPlan::new(0, 1.0).with_kinds(&[FaultKind::Transient]),
        ));
        let (_, report) = engine.run(std::slice::from_ref(&job));
        assert_eq!(report.failed.len(), 1);
        assert!(report.failed[0].1.contains("after 3 attempts"));
        let t = &report.trouble[0];
        assert_eq!(t.outcome, JobOutcome::Failed);
        assert_eq!(t.attempts.len(), 3, "retries+1 attempts then give up");
        // Backoff doubles: 1ms, 2ms, then terminal.
        assert_eq!(t.attempts[0].backoff_ms, 1);
        assert_eq!(t.attempts[1].backoff_ms, 2);
        assert_eq!(t.attempts[2].backoff_ms, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stall_times_out_under_watchdog_and_recovers_on_retry() {
        use crate::faults::FaultKind;
        let setup = tiny_setup();
        let job = SimJob::Run(KernelRunSpec::new(&kernel(24), Scheme::Gto, &setup, None));
        let spec_hash = sha256_hex(&job.spec_text());
        let plan = find_seed(0.6, &[FaultKind::Stall], |p| {
            p.exec_fault(&spec_hash, 0).is_some() && p.exec_fault(&spec_hash, 1).is_none()
        });
        let (mut engine, dir) = tmp_engine("stall");
        engine.backoff_base = Duration::from_millis(1);
        engine.deadline = Some(0.2);
        engine.set_faults(Some(plan));
        let (store, report) = engine.run(std::slice::from_ref(&job));
        assert!(report.failed.is_empty(), "{:?}", report.failed);
        assert_eq!((report.retried, report.recovered), (1, 1));
        assert_eq!(report.timed_out, 0, "final outcome is success");
        let t = &report.trouble[0];
        assert_eq!(t.outcome, JobOutcome::Recovered);
        assert_eq!(t.attempts[0].class, FailClass::Timeout);
        assert!(store.get(&job).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stall_without_deadline_degrades_to_transient() {
        use crate::faults::FaultKind;
        let setup = tiny_setup();
        let job = SimJob::Run(KernelRunSpec::new(&kernel(25), Scheme::Gto, &setup, None));
        let spec_hash = sha256_hex(&job.spec_text());
        let plan = find_seed(0.6, &[FaultKind::Stall], |p| {
            p.exec_fault(&spec_hash, 0).is_some() && p.exec_fault(&spec_hash, 1).is_none()
        });
        let (mut engine, dir) = tmp_engine("stall-nodeadline");
        engine.backoff_base = Duration::from_millis(1);
        engine.set_faults(Some(plan)); // no deadline set
        let (_, report) = engine.run(std::slice::from_ref(&job));
        assert!(report.failed.is_empty());
        assert_eq!(report.trouble[0].attempts[0].class, FailClass::Transient);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_cancels_an_overlong_simulation() {
        let setup = {
            let mut s = tiny_setup();
            // Far beyond what the deadline allows on any host.
            s.run_cycles = u64::MAX / 4;
            s
        };
        let slow = SimJob::Run(KernelRunSpec::new(&kernel(26), Scheme::Gto, &setup, None));
        let quick = {
            let tiny = tiny_setup();
            SimJob::Run(KernelRunSpec::new(&kernel(27), Scheme::Gto, &tiny, None))
        };
        let (mut engine, dir) = tmp_engine("watchdog");
        engine.deadline = Some(0.3);
        engine.max_retries = 0;
        let (store, report) = engine.run(&[slow.clone(), quick.clone()]);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.timed_out, 1);
        assert_eq!(report.trouble[0].outcome, JobOutcome::TimedOut);
        let err = store.get(&slow).unwrap_err();
        assert!(err.contains("timed out"), "unexpected error: {err}");
        assert!(
            store.get(&quick).is_ok(),
            "the wave continues past a timed-out job"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_faults_corrupt_on_disk_but_never_in_memory() {
        use crate::faults::FaultKind;
        let setup = tiny_setup();
        let job = SimJob::Run(KernelRunSpec::new(&kernel(28), Scheme::Gto, &setup, None));
        // Fault-free baseline.
        let (baseline_engine, base_dir) = tmp_engine("store-base");
        let (store0, _) = baseline_engine.run(std::slice::from_ref(&job));
        let want = store0.get(&job).unwrap().as_run().unwrap().counters;

        let (mut engine, dir) = tmp_engine("store-faults");
        engine.set_faults(Some(
            crate::faults::FaultPlan::new(0, 1.0)
                .with_kinds(&[FaultKind::TornWrite, FaultKind::BitFlip]),
        ));
        // Every store is corrupted, so every run re-executes — but the
        // in-memory result is canonicalised from the clean body, never
        // from disk, so consumers always see correct values.
        let (s1, r1) = engine.run(std::slice::from_ref(&job));
        assert_eq!(s1.get(&job).unwrap().as_run().unwrap().counters, want);
        assert_eq!(r1.failed.len(), 0);
        let (s2, r2) = engine.run(std::slice::from_ref(&job));
        assert_eq!(s2.get(&job).unwrap().as_run().unwrap().counters, want);
        assert_eq!(r2.corrupt, 1, "the torn first store is detected");
        // Healing: drop the plan; the next run re-executes and stores
        // cleanly; the one after hits.
        engine.set_faults(None);
        let (_, r3) = engine.run(std::slice::from_ref(&job));
        assert_eq!(r3.executed, 1);
        let (_, r4) = engine.run(std::slice::from_ref(&job));
        assert_eq!((r4.cache_hits, r4.corrupt), (1, 0));
        assert_eq!(engine.fsck().unwrap().corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&base_dir);
    }

    #[test]
    fn model_spec_changes_invalidate_poise_runs_only_via_digest() {
        // Two model specs differing in a training kernel produce
        // different run spec texts (the model is referenced by spec
        // hash), so the Poise run re-simulates.
        let setup = tiny_setup();
        let mut ms = ModelSpec::default_training(&setup);
        ms.kernels.truncate(2);
        let run_a = SimJob::Run(KernelRunSpec::new(
            &kernel(7),
            Scheme::Poise,
            &setup,
            Some(&ms),
        ));
        let mut ms2 = ms.clone();
        ms2.kernels[0].synthetic_mut().unwrap().seed += 1;
        let run_b = SimJob::Run(KernelRunSpec::new(
            &kernel(7),
            Scheme::Poise,
            &setup,
            Some(&ms2),
        ));
        assert_ne!(run_a.spec_text(), run_b.spec_text());
        // A GTO run spec is independent of the model entirely.
        let gto_a = SimJob::Run(KernelRunSpec::new(&kernel(7), Scheme::Gto, &setup, None));
        let gto_b = SimJob::Run(KernelRunSpec::new(&kernel(7), Scheme::Gto, &setup, None));
        assert_eq!(gto_a.spec_text(), gto_b.spec_text());
    }

    /// A run at `cycles` for `kernel(seed)` under `scheme`.
    fn run_at(seed: u64, scheme: Scheme, cycles: u64, setup: &Setup) -> SimJob {
        let mut r = KernelRunSpec::new(&kernel(seed), scheme, setup, None);
        r.run_cycles = cycles;
        SimJob::Run(r)
    }

    fn chain_of(job: &SimJob) -> &[u64] {
        match job {
            SimJob::Run(r) | SimJob::Prefix(r) => &r.prefix_chain,
            _ => panic!("not a kernel job"),
        }
    }

    #[test]
    fn factor_prefixes_builds_chained_ladders() {
        let setup = tiny_setup();
        // A GTO horizon ladder, a lone APCM run, and a random-restart
        // ladder that must never factor.
        let mut jobs = vec![
            run_at(7, Scheme::Gto, 10_000, &setup),
            run_at(7, Scheme::Gto, 20_000, &setup),
            run_at(7, Scheme::Gto, 40_000, &setup),
            run_at(7, Scheme::Apcm, 40_000, &setup),
            run_at(7, Scheme::RandomRestart, 10_000, &setup),
            run_at(7, Scheme::RandomRestart, 20_000, &setup),
        ];
        let shared = factor_prefixes(&mut jobs, 0);
        assert_eq!(shared, 3, "only the GTO ladder forks");
        // Two prefixes appended: GTO@10k (root) and GTO@20k (chained).
        assert_eq!(jobs.len(), 8);
        let (p10, p20) = (&jobs[6], &jobs[7]);
        assert!(matches!(p10, SimJob::Prefix(r) if r.run_cycles == 10_000));
        assert!(matches!(p20, SimJob::Prefix(r) if r.run_cycles == 20_000));
        assert_eq!(chain_of(p10), &[] as &[u64]);
        assert_eq!(chain_of(p20), &[10_000]);
        // Each run forks from the deepest boundary at or below its own
        // horizon; the lone and random-restart runs are untouched.
        assert_eq!(chain_of(&jobs[0]), &[10_000]);
        assert_eq!(chain_of(&jobs[1]), &[10_000, 20_000]);
        assert_eq!(chain_of(&jobs[2]), &[10_000, 20_000]);
        for job in &jobs[3..6] {
            assert_eq!(chain_of(job), &[] as &[u64]);
        }
        // Waves: the root prefix runs before the chained one, and every
        // evaluation run shares the final wave.
        assert!(p10.wave() < p20.wave());
        assert!(jobs[..6].iter().all(|j| j.wave() == usize::MAX));
    }

    #[test]
    fn snapshot_every_threads_checkpoints_without_prefix_jobs() {
        let setup = tiny_setup();
        // A single run gains periodic checkpoints but no prefix jobs —
        // nothing shares them, they only bound lost work on re-entry.
        let mut solo = vec![run_at(3, Scheme::Gto, 40_000, &setup)];
        assert_eq!(factor_prefixes(&mut solo, 15_000), 0);
        assert_eq!(solo.len(), 1);
        assert_eq!(chain_of(&solo[0]), &[15_000, 30_000]);
        // In a ladder, checkpoints merge into the chains but prefixes
        // are still materialised only at ladder horizons.
        let mut jobs = vec![
            run_at(3, Scheme::Gto, 20_000, &setup),
            run_at(3, Scheme::Gto, 40_000, &setup),
        ];
        let shared = factor_prefixes(&mut jobs, 15_000);
        assert_eq!(shared, 2);
        assert_eq!(jobs.len(), 3);
        assert!(matches!(&jobs[2], SimJob::Prefix(r) if r.run_cycles == 20_000));
        assert_eq!(chain_of(&jobs[2]), &[15_000]);
        assert_eq!(chain_of(&jobs[0]), &[15_000, 20_000]);
        assert_eq!(chain_of(&jobs[1]), &[15_000, 20_000, 30_000]);
    }

    #[test]
    fn prefix_factored_ladder_matches_cold_runs_bit_for_bit() {
        let setup = tiny_setup();
        // Two dependency-free schemes, three horizons each — APCM
        // carries mutable controller state across the barrier, so this
        // also exercises the save/restore path through the engine.
        let mut declared: Vec<SimJob> = Vec::new();
        for s in [Scheme::Gto, Scheme::Apcm] {
            for c in [4_000u64, 8_000, 12_000] {
                declared.push(run_at(11, s, c, &setup));
            }
        }
        let (cold_engine, cold_dir) = tmp_engine("prefix-cold");
        let (cold_store, cold_report) = cold_engine.run(&declared);
        assert_eq!(cold_report.executed, 6);

        let mut factored = declared.clone();
        let shared = factor_prefixes(&mut factored, 0);
        assert_eq!(shared, 6);
        let (fork_engine, fork_dir) = tmp_engine("prefix-fork");
        let (fork_store, fork_report) = fork_engine.run(&factored);
        // 6 runs + 2 prefixes per scheme, all simulated once.
        assert_eq!(fork_report.executed, 10);
        assert_eq!(fork_report.failed.len(), 0);
        // The prefix chain is an execution strategy, not an identity:
        // the declared (chain-free) jobs address the factored store, and
        // every forked suffix is bit-identical to its cold run.
        for job in &declared {
            assert_eq!(
                cold_store.get(job).unwrap().to_text(),
                fork_store.get(job).unwrap().to_text(),
                "forked suffix diverged for {}",
                job.label()
            );
        }
        // Warm pass: runs and prefixes all hit.
        let (_, warm) = fork_engine.run(&factored);
        assert_eq!((warm.executed, warm.cache_hits), (0, 10));
        let _ = std::fs::remove_dir_all(&cold_dir);
        let _ = std::fs::remove_dir_all(&fork_dir);
    }

    #[test]
    fn run_published_checkpoints_land_on_prefix_keys() {
        // A run that passes a barrier publishes the blob under the same
        // key a standalone Prefix job would use — so a later ladder (or
        // a worker resuming a stolen lease) finds it without resimulating.
        let setup = tiny_setup();
        let mut r = KernelRunSpec::new(&kernel(9), Scheme::Gto, &setup, None);
        r.run_cycles = 9_000;
        r.prefix_chain = vec![3_000, 6_000];
        let (engine, dir) = tmp_engine("checkpoint");
        let (_, first) = engine.run(&[SimJob::Run(r.clone())]);
        assert_eq!(first.executed, 1);
        let p1 = SimJob::Prefix(r.prefix_at(3_000, &[]));
        let p2 = SimJob::Prefix(r.prefix_at(6_000, &[3_000]));
        let (store, rep) = engine.run(&[p1.clone(), p2.clone()]);
        assert_eq!((rep.executed, rep.cache_hits), (0, 2));
        for (p, cycles) in [(&p1, 3_000), (&p2, 6_000)] {
            let blob = store.get(p).unwrap();
            let parsed = PrefixBlob::parse(blob.as_snapshot().unwrap()).unwrap();
            assert_eq!(parsed.cycles, cycles);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_prefix_blobs_self_heal_to_cold_runs() {
        let setup = tiny_setup();
        let declared: Vec<SimJob> = [4_000u64, 8_000, 12_000]
            .iter()
            .map(|&c| run_at(13, Scheme::Gto, c, &setup))
            .collect();
        let mut factored = declared.clone();
        factor_prefixes(&mut factored, 0);
        let (engine, dir) = tmp_engine("prefix-heal");
        let (store1, r1) = engine.run(&factored);
        assert_eq!(r1.executed, 5);
        // Garble every prefix blob on disk, and evict the run entries so
        // the runs must re-execute and consult the damaged prefixes.
        let mut garbled = 0;
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !entry.path().is_file() {
                continue;
            }
            if name.starts_with("prefix-") {
                std::fs::write(entry.path(), "# poise job cache v1\ngarbage").unwrap();
                garbled += 1;
            } else if name.starts_with("run-") {
                std::fs::remove_file(entry.path()).unwrap();
            }
        }
        assert_eq!(garbled, 2);
        // The runs fall back to cold simulation (the corrupt blobs are
        // quarantined, never trusted) and still produce identical bits.
        let (store2, r2) = engine.run(&factored);
        assert_eq!(r2.failed.len(), 0);
        assert!(r2.quarantined >= 2, "damaged blobs are quarantined");
        for job in &declared {
            assert_eq!(
                store1.get(job).unwrap().to_text(),
                store2.get(job).unwrap().to_text(),
                "self-healed run diverged for {}",
                job.label()
            );
        }
        // Corrupt the (re-stored) blobs again and declare a *longer*
        // run forking from them, with no prefix job scheduled to repair
        // them first: the loader falls through the damaged boundaries
        // to a cold start and the result still matches a cold engine.
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            if entry.file_name().to_string_lossy().starts_with("prefix-") {
                std::fs::write(entry.path(), "# poise job cache v1\ngarbage").unwrap();
            }
        }
        let ext_job = {
            let SimJob::Run(r) = &declared[0] else {
                unreachable!()
            };
            let mut ext = r.clone();
            ext.run_cycles = 16_000;
            ext.prefix_chain = vec![4_000, 8_000];
            SimJob::Run(ext)
        };
        let (store3, r3) = engine.run(std::slice::from_ref(&ext_job));
        assert_eq!((r3.failed.len(), r3.executed), (0, 1));
        assert!(r3.quarantined >= 1, "the damaged fork point is quarantined");
        let (cold_engine, cold_dir) = tmp_engine("prefix-heal-cold");
        let cold16 = run_at(13, Scheme::Gto, 16_000, &setup);
        let (cold_store, _) = cold_engine.run(std::slice::from_ref(&cold16));
        assert_eq!(
            store3.get(&ext_job).unwrap().to_text(),
            cold_store.get(&cold16).unwrap().to_text(),
            "cold fallback diverged from a genuinely cold run"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&cold_dir);
    }
}
