//! Scoped-thread fan-out for the experiment layer.
//!
//! Simulation runs are embarrassingly parallel (each owns its `Gpu`), so a
//! work queue over [`std::thread::scope`] is all that is needed: no
//! external dependency, panics propagate on join, and results keep the
//! input order. Nested use (e.g. the job engine of [`crate::jobs`]
//! fanning a wave of jobs whose grid profiles each fan their points in
//! parallel) is safe — each level caps its workers at the host
//! parallelism, and the leaf tasks are multi-millisecond simulations, so
//! modest oversubscription only helps latency hiding.
//!
//! Callers that need per-task failure isolation (the job engine) wrap
//! `f` in `catch_unwind` themselves; `parallel_map` keeps the strict
//! propagate-on-join contract so plain experiment fan-outs fail fast.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The host's available parallelism, floored at 1. The fan-out width
/// here and the fabric's per-poll lease-claim cap (claiming more jobs
/// than cores just widens the blast radius of a worker death).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` in parallel across the host's cores, preserving
/// input order. Falls back to a sequential map for empty/singleton inputs
/// or single-core hosts. Panics if any worker panics.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = host_parallelism().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    // Cancellation tokens travel via a thread-local (see
    // `gpu_sim::cancel`); re-install the caller's token in every worker
    // so a watchdog can reach nested fan-outs (a job's grid profile
    // fanning its points across threads).
    let inherited = gpu_sim::cancel::current();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let (f, next, slots) = (&f, &next, &slots);
        for _ in 0..workers {
            let inherited = inherited.clone();
            s.spawn(move || {
                let _guard = gpu_sim::cancel::install(inherited);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    match items.get(i) {
                        Some(item) => {
                            let r = f(item);
                            *slots[i].lock().expect("result slot") = Some(r);
                        }
                        None => break,
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..137).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn nested_fanout_is_safe() {
        let items: Vec<usize> = (0..8).collect();
        let out = parallel_map(&items, |&i| {
            let inner: Vec<usize> = (0..4).collect();
            parallel_map(&inner, |&j| i * 10 + j).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn cancellation_token_reaches_workers() {
        let token = gpu_sim::CancelToken::new();
        let _g = gpu_sim::cancel::install(Some(token.clone()));
        let items: Vec<u32> = (0..64).collect();
        let seen = parallel_map(&items, |_| {
            gpu_sim::cancel::current().is_some_and(|t| t.same_as(&token))
        });
        assert!(seen.iter().all(|&b| b), "every worker sees the token");
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, |&x| {
            if x == 33 {
                panic!("worker boom");
            }
            x
        });
    }
}
