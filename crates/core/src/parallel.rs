//! Scoped-thread fan-out for the experiment layer.
//!
//! Simulation runs are embarrassingly parallel (each owns its `Gpu`), so a
//! work queue over [`std::thread::scope`] is all that is needed: no
//! external dependency, panics propagate on join, and results keep the
//! input order. Helper threads are leased from the process-wide budget
//! ([`gpu_sim::threadpool::acquire_helpers`], `POISE_THREAD_BUDGET`), the
//! same pot the simulator's per-SM advance pool draws from, so nested use
//! (e.g. the job engine of [`crate::jobs`] fanning a wave of jobs whose
//! runs each step SMs with `sim_threads > 1`) composes instead of
//! oversubscribing: inner fan-outs see what the outer ones left and
//! degrade to sequential on their own thread when the pot is dry.
//!
//! Callers that need per-task failure isolation (the job engine) wrap
//! `f` in `catch_unwind` themselves; `parallel_map` keeps the strict
//! propagate-on-join contract so plain experiment fan-outs fail fast.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The host's available parallelism, floored at 1. The fan-out width
/// here and the fabric's per-poll lease-claim cap (claiming more jobs
/// than cores just widens the blast radius of a worker death).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` in parallel, preserving input order. Helper
/// threads are leased from the process-wide budget (the calling thread
/// always participates); empty/singleton inputs and a dry budget fall
/// back to a sequential map. Panics if any worker panics.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let lease = gpu_sim::threadpool::acquire_helpers(items.len() - 1);
    if lease.granted() == 0 {
        return items.iter().map(f).collect();
    }
    // Cancellation tokens travel via a thread-local (see
    // `gpu_sim::cancel`); re-install the caller's token in every worker
    // so a watchdog can reach nested fan-outs (a job's grid profile
    // fanning its points across threads).
    let inherited = gpu_sim::cancel::current();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let (f, next, slots) = (&f, &next, &slots);
        let drain = move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            match items.get(i) {
                Some(item) => {
                    let r = f(item);
                    *slots[i].lock().expect("result slot") = Some(r);
                }
                None => break,
            }
        };
        for _ in 0..lease.granted() {
            let inherited = inherited.clone();
            s.spawn(move || {
                let _guard = gpu_sim::cancel::install(inherited);
                drain();
            });
        }
        // The caller works too — its thread is the one the budget's
        // `- 1` reservation accounts for.
        drain();
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..137).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn nested_fanout_is_safe() {
        let items: Vec<usize> = (0..8).collect();
        let out = parallel_map(&items, |&i| {
            let inner: Vec<usize> = (0..4).collect();
            parallel_map(&inner, |&j| i * 10 + j).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn cancellation_token_reaches_workers() {
        let token = gpu_sim::CancelToken::new();
        let _g = gpu_sim::cancel::install(Some(token.clone()));
        let items: Vec<u32> = (0..64).collect();
        let seen = parallel_map(&items, |_| {
            gpu_sim::cancel::current().is_some_and(|t| t.same_as(&token))
        });
        assert!(seen.iter().all(|&b| b), "every worker sees the token");
    }

    #[test]
    fn exhausted_budget_degrades_to_sequential() {
        // Hog the whole process budget; the map must still complete
        // (sequentially, on the calling thread).
        let hog = gpu_sim::threadpool::acquire_helpers(usize::MAX);
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |&x| x + 1);
        assert_eq!(out, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
        drop(hog);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, |&x| {
            if x == 33 {
                panic!("worker boom");
            }
            x
        });
    }
}
