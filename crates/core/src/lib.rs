//! # poise — ML-driven warp-tuple scheduling for GPUs
//!
//! This crate implements the paper's primary contribution on top of the
//! `gpu-sim` substrate:
//!
//! * [`hie`] — the **hardware inference engine** (Section VI): a per-GPU
//!   finite state machine that samples the Table II features at the two
//!   reference points of the {N, p} space, predicts a warp-tuple with the
//!   offline-trained Negative Binomial link function, and refines it with
//!   a stride-halving gradient-ascent local search;
//! * [`policies`] — every comparison scheduler of Section VII: the GTO
//!   baseline, SWL (static warp limiting), dynamic PCAL-SWL, Static-Best,
//!   random-restart stochastic search and APCM-style instruction-based
//!   cache bypassing;
//! * [`profiler`] — offline {N, p} grid profiling (parallelised with
//!   scoped threads, see [`parallel`]), diagonal/global optima, and the
//!   `Pbest` memory-sensitivity classification (speedup with a 64× L1);
//! * [`train`] — the end-to-end offline training pipeline: profile the
//!   training suite, score targets (Eq. 12), fit the regressions;
//! * [`experiment`] — shared runners used by the figure/table regenerators
//!   in the `poise-bench` crate;
//! * [`jobs`] — the unified experiment engine: typed simulation jobs over
//!   a deduplicating in-process work queue, with content-addressed result
//!   caching in [`cache`] (`results/cache/`);
//! * [`plan`] — declarative experiment plans: typed sweep axes and the
//!   knob overlay (`--set` / `--sweep`) whose cartesian expansion feeds
//!   `(Setup, SimJob)` sets through the engine with cross-point sharing;
//! * [`daemon`] — the sweep daemon: a Unix-socket service that admits,
//!   coalesces and streams concurrent experiment plans onto the lease
//!   fabric (`poised` in `poise-bench` is the binary);
//! * [`hardware_cost`] — the §VII-I storage-overhead accounting
//!   (≈ 41 bytes per SM).
//!
//! ## Quickstart
//!
//! ```no_run
//! use poise::{experiment::{self, Scheme}, train};
//! use workloads::evaluation_suite;
//!
//! let setup = experiment::Setup::default();
//! let model = train::train_default_model(&setup);
//! let bench = &evaluation_suite()[0];
//! let gto = experiment::run_benchmark(bench, Scheme::Gto, &model, &setup);
//! let poise = experiment::run_benchmark(bench, Scheme::Poise, &model, &setup);
//! println!("speedup: {:.2}x", poise.ipc / gto.ipc);
//! ```

pub mod cache;
pub(crate) mod ctrl_state;
pub mod daemon;
pub mod experiment;
pub mod fabric;
pub mod faults;
pub mod hardware_cost;
pub mod hie;
pub mod jobs;
pub mod parallel;
pub mod params;
pub mod plan;
pub mod policies;
pub mod profiler;
pub mod train;

pub use experiment::{BenchResult, Scheme, Setup};
pub use fabric::FabricConfig;
pub use faults::{FaultKind, FaultPlan};
pub use hie::{EpochLog, PoiseController};
pub use jobs::{Engine, JobOutput, ResultStore, RunReport, SimJob};
pub use params::PoiseParams;
pub use plan::{Axis, ExperimentPlan, Knob, KnobOverlay, KnobValue, PlanExpansion, SweepPoint};
pub use profiler::{GridSpec, ProfileWindow};
