//! Golden tests pinning the sweep daemon's wire grammar (protocol v1),
//! plus a live round-trip over a real Unix socket.
//!
//! Like `spec_golden.rs` for cache keys: the daemon and its clients may
//! be different builds (a long-running `poised` outlives `cargo build`),
//! so the line grammar is part of the compatibility surface. A diff
//! here means protocol v1 changed shape — bump
//! [`poise::daemon::PROTOCOL_VERSION`] and update both sides, don't
//! just re-pin.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use poise::daemon::{Daemon, DaemonConfig, Event, Request, SubmitRequest};
use poise::experiment::{Scheme, Setup};
use poise::jobs::{Engine, JobStatus, KernelRunSpec, SimJob};
use poise::profiler::{GridSpec, ProfileWindow};
use workloads::{AccessMix, KernelSpec, Workload};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("poise-proto-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_setup() -> Setup {
    let mut s = Setup::for_tests();
    s.run_cycles = 6_000;
    s.eval_grid = GridSpec::diagonal(6);
    s.profile_window = ProfileWindow {
        warmup: 200,
        measure: 800,
    };
    s
}

fn kernel(seed: u64) -> Workload {
    KernelSpec::steady(format!("proto{seed}"), AccessMix::memory_sensitive(), seed).into()
}

// ---------------------------------------------------------------------------
// The grammar goldens.
// ---------------------------------------------------------------------------

#[test]
fn request_grammar_golden_v1() {
    let cases = [
        (
            Request::Submit(SubmitRequest {
                client: "alice".into(),
                priority: 2,
                set: vec!["sms=2".into()],
                sweep: vec!["run_cycles=10000,20000".into()],
                only: Some(vec!["fig07".into()]),
            }),
            r#"{"v":1,"cmd":"submit","client":"alice","priority":2,"set":["sms=2"],"sweep":["run_cycles=10000,20000"],"only":["fig07"]}"#,
        ),
        (
            Request::Submit(SubmitRequest {
                client: "bob".into(),
                priority: 0,
                set: vec![],
                sweep: vec![],
                only: None,
            }),
            r#"{"v":1,"cmd":"submit","client":"bob","priority":0,"set":[],"sweep":[]}"#,
        ),
        (Request::Status, r#"{"v":1,"cmd":"status"}"#),
        (
            Request::Cancel { id: "s3".into() },
            r#"{"v":1,"cmd":"cancel","id":"s3"}"#,
        ),
        (
            Request::Shutdown { now: false },
            r#"{"v":1,"cmd":"shutdown","mode":"drain"}"#,
        ),
        (
            Request::Shutdown { now: true },
            r#"{"v":1,"cmd":"shutdown","mode":"now"}"#,
        ),
    ];
    for (req, golden) in cases {
        assert_eq!(req.render(), golden, "render of {req:?}");
        assert_eq!(
            Request::parse_line(golden).unwrap(),
            req,
            "parse of {golden}"
        );
    }
}

#[test]
fn event_grammar_golden_v1() {
    let cases = [
        (
            Event::Admitted {
                id: "s1".into(),
                client: "alice".into(),
                jobs: 12,
                cross_client_shared: 7,
                queue_depth: 2,
            },
            r#"{"v":1,"event":"admitted","id":"s1","client":"alice","jobs":12,"cross_client_shared":7,"queue_depth":2}"#,
        ),
        (
            Event::Rejected {
                client: "bob".into(),
                reason: "queue full (16 queued)".into(),
            },
            r#"{"v":1,"event":"rejected","client":"bob","reason":"queue full (16 queued)"}"#,
        ),
        (
            Event::Job {
                id: "s1".into(),
                label: "run proto1 gto".into(),
                spec_hash: "0a1b2c".into(),
                status: JobStatus::Hit,
                attempts: 0,
                wall: 0.25,
                error: None,
            },
            r#"{"v":1,"event":"job","id":"s1","label":"run proto1 gto","spec_hash":"0a1b2c","status":"hit","attempts":0,"wall":0.25}"#,
        ),
        (
            Event::Job {
                id: "s2".into(),
                label: "run proto2 gto".into(),
                spec_hash: "3d4e5f".into(),
                status: JobStatus::Failed,
                attempts: 3,
                wall: 1.5,
                error: Some("panicked".into()),
            },
            r#"{"v":1,"event":"job","id":"s2","label":"run proto2 gto","spec_hash":"3d4e5f","status":"failed","attempts":3,"wall":1.5,"error":"panicked"}"#,
        ),
        (
            Event::Progress {
                id: "s1".into(),
                done: 3,
                total: 12,
                percent: 25,
            },
            r#"{"v":1,"event":"progress","id":"s1","done":3,"total":12,"percent":25}"#,
        ),
        (
            Event::Complete {
                id: "s1".into(),
                outcome: "pass".into(),
                executed: 5,
                cache_hits: 7,
                failed: 0,
                cancelled: 0,
            },
            r#"{"v":1,"event":"complete","id":"s1","outcome":"pass","executed":5,"cache_hits":7,"failed":0,"cancelled":0}"#,
        ),
        (
            Event::Error {
                error: "unknown cmd \"warp_drive\"".into(),
            },
            r#"{"v":1,"event":"error","error":"unknown cmd \"warp_drive\""}"#,
        ),
        (
            Event::Ack {
                cmd: "shutdown".into(),
                id: None,
            },
            r#"{"v":1,"event":"ack","cmd":"shutdown"}"#,
        ),
    ];
    for (ev, golden) in cases {
        assert_eq!(ev.render(), golden, "render of {ev:?}");
        assert_eq!(Event::parse_line(golden).unwrap(), ev, "parse of {golden}");
    }
}

#[test]
fn unknown_fields_are_ignored_forward_compatibly() {
    // A v1 client must survive a v1.x daemon adding fields, and vice
    // versa: lookup-based parsing ignores anything it doesn't know.
    let req = r#"{"v":1,"cmd":"cancel","id":"s9","deadline":12.5,"tags":["a"]}"#;
    assert_eq!(
        Request::parse_line(req).unwrap(),
        Request::Cancel { id: "s9".into() }
    );
    let ev = r#"{"v":1,"event":"ack","cmd":"cancel","id":"s9","took_ms":3}"#;
    assert_eq!(
        Event::parse_line(ev).unwrap(),
        Event::Ack {
            cmd: "cancel".into(),
            id: Some("s9".into()),
        }
    );
}

// ---------------------------------------------------------------------------
// Live round-trip over a real socket.
// ---------------------------------------------------------------------------

fn send_line(stream: &mut UnixStream, line: &str) {
    writeln!(stream, "{line}").unwrap();
}

fn read_event(reader: &mut BufReader<UnixStream>) -> Event {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(!line.trim().is_empty(), "daemon closed the stream");
    Event::parse_line(line.trim()).unwrap()
}

fn connect(cfg: &DaemonConfig) -> (UnixStream, BufReader<UnixStream>) {
    let stream = UnixStream::connect(&cfg.socket).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

#[test]
fn daemon_round_trip_over_socket() {
    let dir = tmp_dir("live");
    let engine = Engine::new(dir.join("cache"));
    let cfg = DaemonConfig::for_results_dir(&dir);
    let setup = tiny_setup();
    let planner = move |req: &SubmitRequest| -> Result<Vec<SimJob>, String> {
        if req.only.as_deref() == Some(&["nope".to_string()][..]) {
            return Err("no figures matched the --only filter".to_string());
        }
        Ok(vec![
            SimJob::Run(KernelRunSpec::new(&kernel(1), Scheme::Gto, &setup, None)),
            SimJob::Run(KernelRunSpec::new(&kernel(2), Scheme::Gto, &setup, None)),
        ])
    };
    let serve_cfg = cfg.clone();
    let server = std::thread::spawn(move || Daemon::serve(engine, Box::new(planner), serve_cfg));
    for _ in 0..200 {
        if cfg.socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(cfg.socket.exists(), "daemon never bound its socket");

    // Malformed and truncated lines get structured error events on a
    // connection that stays usable — never a panic or a silent drop.
    let (mut stream, mut reader) = connect(&cfg);
    for bad in ["{not json", "[1,2]", r#"{"v":1,"cmd":"warp_drive"}"#] {
        send_line(&mut stream, bad);
        let Event::Error { error } = read_event(&mut reader) else {
            panic!("line {bad:?} must answer with an error event");
        };
        assert!(!error.is_empty());
    }
    // A planner failure is an error reply, not an admission.
    send_line(
        &mut stream,
        &Request::Submit(SubmitRequest {
            client: "t0".into(),
            only: Some(vec!["nope".into()]),
            ..Default::default()
        })
        .render(),
    );
    let Event::Error { error } = read_event(&mut reader) else {
        panic!("planner failure must answer with an error event");
    };
    assert!(error.contains("no figures matched"));
    // Status on the same (still healthy) connection: all idle.
    send_line(&mut stream, &Request::Status.render());
    let Event::Status { running, queued } = read_event(&mut reader) else {
        panic!("status must answer with a status event");
    };
    assert!(running.is_empty() && queued.is_empty());
    // Cancelling an unknown id is an error, not a panic.
    send_line(&mut stream, &Request::Cancel { id: "s99".into() }.render());
    assert!(matches!(read_event(&mut reader), Event::Error { .. }));
    drop(stream);

    // A real submission: admitted, streamed, completed cold (executed).
    let (mut stream, mut reader) = connect(&cfg);
    send_line(
        &mut stream,
        &Request::Submit(SubmitRequest {
            client: "t1".into(),
            ..Default::default()
        })
        .render(),
    );
    let Event::Admitted { id, jobs, .. } = read_event(&mut reader) else {
        panic!("submission must be admitted");
    };
    assert_eq!(jobs, 2);
    let (mut saw_done, mut saw_progress) = (0, 0);
    let complete = loop {
        match read_event(&mut reader) {
            Event::Complete {
                id: cid,
                outcome,
                executed,
                cache_hits,
                failed,
                cancelled,
            } => {
                assert_eq!(cid, id);
                break (outcome, executed, cache_hits, failed, cancelled);
            }
            Event::Job { status, .. } => {
                if status == JobStatus::Done {
                    saw_done += 1;
                }
            }
            Event::Progress { done, total, .. } => {
                saw_progress += 1;
                assert!(done <= total);
            }
            other => panic!("unexpected event on submit stream: {other:?}"),
        }
    };
    assert_eq!(complete, ("pass".to_string(), 2, 0, 0, 0));
    assert_eq!(saw_done, 2, "both jobs execute cold");
    assert_eq!(saw_progress, 2, "one progress event per resolved job");

    // The same plan resubmitted: all cache hits, nothing re-executed.
    let (mut stream, mut reader) = connect(&cfg);
    send_line(
        &mut stream,
        &Request::Submit(SubmitRequest {
            client: "t2".into(),
            ..Default::default()
        })
        .render(),
    );
    assert!(matches!(read_event(&mut reader), Event::Admitted { .. }));
    loop {
        match read_event(&mut reader) {
            Event::Complete {
                executed,
                cache_hits,
                outcome,
                ..
            } => {
                assert_eq!((outcome.as_str(), executed, cache_hits), ("pass", 0, 2));
                break;
            }
            Event::Job { status, .. } => assert_eq!(status, JobStatus::Hit),
            Event::Progress { .. } => {}
            other => panic!("unexpected event: {other:?}"),
        }
    }

    // Graceful shutdown: ack, then the server thread returns, the
    // socket is removed and no lease survives.
    let (mut stream, mut reader) = connect(&cfg);
    send_line(&mut stream, &Request::Shutdown { now: false }.render());
    assert!(matches!(read_event(&mut reader), Event::Ack { .. }));
    let completed = server.join().unwrap().unwrap();
    assert_eq!(completed, 2, "both submissions completed");
    assert!(!cfg.socket.exists(), "socket removed on shutdown");
    let leases = dir.join("cache").join("leases");
    if let Ok(entries) = std::fs::read_dir(&leases) {
        let leaked: Vec<String> = entries
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".lease") || n.starts_with(".steal-"))
            .collect();
        assert!(leaked.is_empty(), "leaked leases: {leaked:?}");
    }

    // The event log survives and parses line-by-line with the same
    // grammar (seq/t wrapper fields are ignored as unknown).
    let log = std::fs::read_to_string(cfg.events_log).unwrap();
    let events: Vec<Event> = log
        .lines()
        .map(|l| Event::parse_line(l).expect("every log line parses"))
        .collect();
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Admitted { client, .. } if client == "t1")));
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, Event::Complete { .. }))
            .count(),
        2
    );
    let _ = std::fs::remove_dir_all(&dir);
}
