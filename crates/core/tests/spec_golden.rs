//! Golden pins of [`SimJob::spec_text`] for every job kind.
//!
//! The spec text *is* cache identity: its SHA-256 (plus dependency
//! digests and `CACHE_VERSION`) addresses each result under
//! `results/cache/`. These tests freeze the exact rendering for one
//! representative job per kind, so a struct refactor that accidentally
//! changes the rendering — a field rename leaking through a `Debug`
//! derive, a reordered field list, a float formatting change — fails
//! loudly here instead of silently invalidating (or aliasing) every
//! cached result in the fleet. An *intentional* identity change must
//! update these goldens and bump [`poise::jobs::CACHE_VERSION`].

use gpu_sim::{GpuConfig, StepMode, WarpTuple};
use poise::cache::sha256_hex;
use poise::experiment::Scheme;
use poise::jobs::{
    KernelRunSpec, ModelSpec, PbestSpec, ProfileSpec, SampleSpec, SimJob, TupleRunSpec,
};
use poise::profiler::{GridSpec, ProfileWindow};
use poise_ml::ScoringWeights;
use workloads::{AccessMix, KernelSpec, Workload};

// The shared building blocks of the goldens, pinned verbatim.
const KERNEL: &str = "kernel KernelSpec { name: \"golden\", warps_per_scheduler: 24, phases: \
     [Phase { mix: AccessMix { alu_per_load: 4, mlp: 2, ind_gap: 1, hot_lines: 16, \
     hot_repeat: 2, hot_frac: 0.8, cold_lines: 256, shared_lines: 48, shared_frac: 0.15, \
     stream_frac: 0.05, store_frac: 0.05 }, instructions: 18446744073709551615 }], \
     trace_len: None, seed: 3 }";
const CFG: &str = "cfg gpu v1 sms=2 schedulers=2 max_warps=24 \
     l1=sets:32,ways:4,line:128,index:hashed l1_hit_latency=72 l1_mshrs=32 \
     mshr_merge_limit=8 l2=sets:96,ways:8,line:128,index:linear,banks:2,latency:120,service:2 \
     xbar=16 dram=partitions:1,latency:220,service:12 \
     energy=alu:1.0,l1:4.0,l2:16.0,dram:160.0,leak:6.0 track_reuse=false track_pc=false";
const GRID: &str = "grid v1 max_n=4 points=1:1,2:2,3:3,4:4";
const WINDOW: &str = "window v1 warmup=100 measure=200";
const SCORING: &str = "scoring v1 w=1.0,0.5,0.25";

fn workload() -> Workload {
    KernelSpec::steady("golden", AccessMix::memory_sensitive(), 3).into()
}

fn cfg() -> GpuConfig {
    GpuConfig::scaled(2)
}

fn window() -> ProfileWindow {
    ProfileWindow {
        warmup: 100,
        measure: 200,
    }
}

fn setup() -> poise::Setup {
    poise::Setup {
        cfg: cfg(),
        eval_grid: GridSpec::diagonal(4),
        profile_window: window(),
        run_cycles: 5_000,
        ..poise::Setup::for_tests()
    }
}

fn model_spec() -> ModelSpec {
    ModelSpec {
        kernels: vec![workload()],
        cfg: cfg(),
        grid: GridSpec::diagonal(4),
        window: window(),
        scoring: ScoringWeights::default(),
        drop_features: vec![1, 3],
    }
}

fn golden_profile() -> String {
    format!("job profile\n{KERNEL}\n{CFG}\n{GRID}\n{WINDOW}\n")
}

fn golden_train() -> String {
    format!("job train\n{KERNEL}\n{CFG}\n{GRID}\n{WINDOW}\n{SCORING}\ndrop_features 1,3\n")
}

#[test]
fn spec_texts_match_goldens() {
    let profile_spec = ProfileSpec {
        workload: workload(),
        cfg: cfg(),
        grid: GridSpec::diagonal(4),
        window: window(),
    };
    let mut poise_run =
        KernelRunSpec::new(&workload(), Scheme::Poise, &setup(), Some(&model_spec()));
    // The display tag must never reach the spec text.
    poise_run.tag = Some("sms=2".into());
    let swl_run = KernelRunSpec::new(&workload(), Scheme::Swl, &setup(), None);

    // Dependency references are the SHA-256 of the dependency's own
    // golden text, derived from the pinned strings (not from the code
    // under test), so an edit to either side trips the comparison.
    let golden_run_poise = format!(
        "job run\n{KERNEL}\nscheme Poise\n{CFG}\nrun_cycles 5000\nparams v1 {SCORING} \
         t_period=20000 t_warmup=200 t_feature=1000 t_search=400 i_max=49.0 stride_n=2 \
         stride_p=4\nmodel {}\n",
        sha256_hex(&golden_train())
    );
    let golden_run_swl = format!(
        "job run\n{KERNEL}\nscheme SWL\n{CFG}\nrun_cycles 5000\nprofile {}\n",
        sha256_hex(&golden_profile())
    );

    let cases: Vec<(&str, SimJob, String)> = vec![
        ("profile", SimJob::Profile(profile_spec), golden_profile()),
        (
            "pbest",
            SimJob::Pbest(PbestSpec {
                workload: workload(),
                cfg: cfg(),
                window: window(),
            }),
            format!("job pbest\n{KERNEL}\n{CFG}\n{WINDOW}\n"),
        ),
        (
            "tuple",
            SimJob::TupleRun(TupleRunSpec {
                workload: workload(),
                cfg: cfg(),
                tuple: WarpTuple { n: 3, p: 2 },
                window: window(),
            }),
            format!("job tuple\n{KERNEL}\n{CFG}\ntuple v1 n=3 p=2\n{WINDOW}\n"),
        ),
        (
            "sample",
            SimJob::Sample(SampleSpec {
                workload: workload(),
                cfg: cfg(),
                grid: GridSpec::diagonal(4),
                window: window(),
                scoring: ScoringWeights::default(),
            }),
            format!("job sample\n{KERNEL}\n{CFG}\n{GRID}\n{WINDOW}\n{SCORING}\n"),
        ),
        ("train", SimJob::Train(model_spec()), golden_train()),
        ("run-poise", SimJob::Run(poise_run), golden_run_poise),
        ("run-swl", SimJob::Run(swl_run), golden_run_swl),
    ];
    for (name, job, expected) in cases {
        assert_eq!(
            job.spec_text(),
            expected,
            "{name}: cache identity changed — if intentional, update this \
             golden AND bump poise::jobs::CACHE_VERSION"
        );
    }
}

#[test]
fn step_mode_is_excluded_from_cache_identity() {
    // All step modes are proven bit-identical (the differential suites),
    // so switching the run loop must keep hitting the same cache entries.
    let mut a = cfg();
    let mut b = cfg();
    a.step_mode = StepMode::PerSm;
    b.step_mode = StepMode::Reference;
    let job = |c: GpuConfig| {
        SimJob::Pbest(PbestSpec {
            workload: workload(),
            cfg: c,
            window: window(),
        })
    };
    assert_eq!(job(a).spec_text(), job(b).spec_text());
}

#[test]
fn display_tag_never_enters_identity_or_equality() {
    let mut tagged = KernelRunSpec::new(&workload(), Scheme::Gto, &setup(), None);
    let bare = tagged.clone();
    tagged.tag = Some("sms=16".into());
    assert_eq!(
        SimJob::Run(tagged.clone()).spec_text(),
        SimJob::Run(bare.clone()).spec_text()
    );
    assert_eq!(tagged, bare, "tag is display-only");
    assert!(SimJob::Run(tagged).label().contains("sms=16"));
    assert!(!SimJob::Run(bare).label().contains("sms="));
}
