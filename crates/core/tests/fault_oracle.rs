//! The robustness oracle: a differential property test over the fault
//! injector (see `poise::faults`).
//!
//! For any deterministic fault plan at rate ≤ 0.2 the engine must
//! (a) terminate, (b) leave every *surviving* output bit-identical to a
//! fault-free run — faults may kill jobs, never skew them — and (c) when
//! re-run over the same store (modelling a killed-and-restarted
//! `run_all`), converge to the identical final result store with zero
//! corrupt entries surviving an fsck.
//!
//! The job graph is small but shaped like the real harness: plain GTO
//! runs, an SWL run that pulls in a grid-profile dependency, and a Poise
//! run that pulls in sampling + training dependencies.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

use poise::experiment::{Scheme, Setup};
use poise::jobs::{Engine, KernelRunSpec, ModelSpec, SimJob};
use poise::profiler::{GridSpec, ProfileWindow};
use poise::{FaultKind, FaultPlan};
use workloads::{AccessMix, KernelSpec, Workload};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("poise-oracle-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_setup() -> Setup {
    let mut s = Setup::for_tests();
    s.run_cycles = 8_000;
    s.eval_grid = GridSpec::diagonal(6);
    s.profile_window = ProfileWindow {
        warmup: 200,
        measure: 800,
    };
    s
}

fn kernel(seed: u64) -> Workload {
    KernelSpec::steady(format!("oracle{seed}"), AccessMix::memory_sensitive(), seed).into()
}

/// The oracle's job graph: three GTO runs, one SWL run (profile
/// dependency), one Poise run (sample + train dependencies via the
/// test-scale training spec).
fn jobs(setup: &Setup) -> Vec<SimJob> {
    let model = ModelSpec::default_training(setup);
    vec![
        SimJob::Run(KernelRunSpec::new(&kernel(1), Scheme::Gto, setup, None)),
        SimJob::Run(KernelRunSpec::new(&kernel(2), Scheme::Gto, setup, None)),
        SimJob::Run(KernelRunSpec::new(&kernel(3), Scheme::Gto, setup, None)),
        SimJob::Run(KernelRunSpec::new(&kernel(1), Scheme::Swl, setup, None)),
        SimJob::Run(KernelRunSpec::new(
            &kernel(2),
            Scheme::Poise,
            setup,
            Some(&model),
        )),
    ]
}

/// An engine tuned for fast test turnaround: negligible backoff, a
/// deadline short enough that injected stalls resolve quickly but
/// generous against real job walls (these jobs run in milliseconds).
fn engine(dir: &PathBuf, faults: Option<FaultPlan>) -> Engine {
    let mut e = Engine::new(dir);
    e.quiet = true;
    e.backoff_base = Duration::from_millis(1);
    e.deadline = Some(0.5);
    e.set_faults(faults);
    e
}

/// Serialise every surviving output of a run, keyed by job label.
fn surviving(store: &poise::jobs::ResultStore, jobs: &[SimJob]) -> BTreeMap<String, String> {
    jobs.iter()
        .filter_map(|j| store.get(j).ok().map(|o| (j.label(), o.to_text())))
        .collect()
}

/// The fault-free reference outputs for the oracle's job graph.
fn baseline(tag: &str) -> BTreeMap<String, String> {
    let dir = tmp_dir(&format!("base-{tag}"));
    let setup = tiny_setup();
    let js = jobs(&setup);
    let (store, report) = engine(&dir, None).run(&js);
    assert_eq!(report.failed.len(), 0, "fault-free baseline must pass");
    let out = surviving(&store, &js);
    assert_eq!(out.len(), js.len());
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// Oracle (a) + (b): across seeds and rates up to 0.2, with every fault
/// kind armed, the engine terminates and every surviving output is
/// bit-identical to the fault-free run.
#[test]
fn surviving_outputs_are_bit_identical_under_any_plan() {
    let reference = baseline("ident");
    let setup = tiny_setup();
    let js = jobs(&setup);
    for seed in [1u64, 7, 42] {
        for rate in [0.1f64, 0.2] {
            let dir = tmp_dir(&format!("ident-{seed}-{}", (rate * 100.0) as u32));
            let plan = FaultPlan::new(seed, rate);
            let (store, report) = engine(&dir, Some(plan)).run(&js);
            let got = surviving(&store, &js);
            for (label, text) in &got {
                assert_eq!(
                    text,
                    reference.get(label).expect("label set is fixed"),
                    "seed={seed} rate={rate}: surviving output {label} diverged"
                );
            }
            // Accounting: every requested job either survived or is in
            // the failure list (which also names failed dependencies).
            for j in &js {
                let label = j.label();
                assert!(
                    got.contains_key(&label) || report.failed.iter().any(|(l, _)| *l == label),
                    "seed={seed} rate={rate}: {label} neither survived nor failed"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Oracle (c): a run killed and restarted with the *same* fault plan
/// converges. Each restart is a fresh engine over the same store — the
/// cache heals corrupt entries (quarantine indices advance the fault
/// occurrence, so a torn write is not deterministically re-torn) and
/// retries absorb transient losses, so within a few rounds a pass is
/// fully warm and clean, and the final store matches the fault-free one
/// with nothing corrupt left behind.
#[test]
fn restarted_runs_converge_to_the_fault_free_store() {
    let reference = baseline("conv");
    let setup = tiny_setup();
    let js = jobs(&setup);
    // Recoverable kinds only: an injected panic is terminal by design
    // (never retried), so it cannot converge and is excluded here.
    let kinds = [
        FaultKind::Transient,
        FaultKind::Stall,
        FaultKind::TornWrite,
        FaultKind::BitFlip,
    ];
    for seed in [3u64, 11] {
        let dir = tmp_dir(&format!("conv-{seed}"));
        let plan = FaultPlan::new(seed, 0.2).with_kinds(&kinds);
        let mut clean = false;
        for round in 0..8 {
            let e = engine(&dir, Some(plan.clone()));
            let (_, report) = e.run(&js);
            if report.failed.is_empty() && report.corrupt == 0 && report.executed == 0 {
                clean = true;
                break;
            }
            // Progress is not monotone (a store fault can corrupt a
            // fresh entry), but occurrence re-rolls make a clean warm
            // pass overwhelmingly likely within the round budget.
            let _ = round;
        }
        assert!(clean, "seed={seed}: no clean warm pass within 8 restarts");
        // The converged store answers everything from cache and matches
        // the fault-free outputs bit for bit.
        let e = engine(&dir, None);
        let (store, report) = e.run(&js);
        assert_eq!(report.executed, 0, "converged store must be fully warm");
        assert_eq!(report.failed.len(), 0);
        assert_eq!(surviving(&store, &js), reference, "seed={seed}");
        // And nothing corrupt survives an offline fsck.
        let fsck = e.fsck().expect("fsck");
        assert_eq!(fsck.corrupt, 0, "seed={seed}: corrupt entries survived");
        assert_eq!(fsck.valid, fsck.scanned);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Injected panics are terminal: the job fails on its first attempt and
/// unaffected jobs in the same wave still complete and match.
#[test]
fn panics_kill_only_their_own_job() {
    let reference = baseline("panic");
    let setup = tiny_setup();
    let js = jobs(&setup);
    let dir = tmp_dir("panic-only");
    // Panic-only plan at a rate that certainly hits something.
    let plan = FaultPlan::new(5, 0.5).with_kinds(&[FaultKind::Panic]);
    let (store, report) = engine(&dir, Some(plan)).run(&js);
    assert!(
        !report.failed.is_empty(),
        "a 0.5-rate panic plan must hit at least one of the jobs"
    );
    for (label, text) in surviving(&store, &js) {
        assert_eq!(text, reference[&label], "survivor {label} diverged");
    }
    for t in &report.trouble {
        assert_eq!(
            t.attempts.len(),
            1,
            "{}: panics must not be retried",
            t.label
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
