//! Differential tests: the per-SM decoupled run loop (single-threaded
//! and on the work-stealing pool), and the global event-driven
//! fast-forward loop, must all be **bit-identical** to the cycle-stepped
//! reference loop for every shipped control policy, across streaming /
//! cache-resident / finite / phased kernels.
//!
//! This is the contract that makes the fast-forward optimisations safe to
//! lean on everywhere: same `Counters` (so IPC, AML, hit rates and gap
//! statistics agree exactly), same final cycle, same completion status,
//! and same controller steering trajectory (tuple changes at the same
//! cycles with the same values — proving skipped spans never cross a
//! controller wake, and per-SM epochs barrier exactly on every wake).

use gpu_sim::{ControlCtx, Controller, Counters, FixedTuple, Gpu, GpuConfig, StepMode, WarpTuple};
use poise::hie::PoiseController;
use poise::params::PoiseParams;
use poise::policies::{ApcmController, PcalSwlController, RandomRestartController};
use poise_ml::{TrainedModel, N_FEATURES};
use workloads::{AccessMix, KernelSpec, Phase};

/// Wraps a controller, recording every tuple change it steers, so two
/// runs can be compared action-by-action.
struct Recording<C> {
    inner: C,
    events: Vec<(u64, WarpTuple)>,
}

impl<C> Recording<C> {
    fn new(inner: C) -> Self {
        Recording {
            inner,
            events: Vec::new(),
        }
    }
}

impl<C: Controller> Controller for Recording<C> {
    fn on_kernel_start(&mut self, ctx: &mut ControlCtx) {
        self.inner.on_kernel_start(ctx);
        self.events.push((ctx.cycle, ctx.current_tuple()));
    }

    fn on_cycle(&mut self, ctx: &mut ControlCtx) {
        let before = ctx.current_tuple();
        self.inner.on_cycle(ctx);
        let after = ctx.current_tuple();
        if before != after {
            self.events.push((ctx.cycle, after));
        }
    }

    fn on_kernel_end(&mut self, ctx: &mut ControlCtx) {
        self.inner.on_kernel_end(ctx);
    }

    fn next_wake(&self, now: u64) -> Option<u64> {
        self.inner.next_wake(now)
    }
}

fn const_model(n: f64, p: f64) -> TrainedModel {
    let mut alpha = [0.0; N_FEATURES];
    let mut beta = [0.0; N_FEATURES];
    alpha[N_FEATURES - 1] = n.ln();
    beta[N_FEATURES - 1] = p.ln();
    TrainedModel {
        alpha,
        beta,
        dispersion_n: 0.1,
        dispersion_p: 0.1,
        samples_used: 0,
        dropped_features: Vec::new(),
    }
}

/// The kernels of the differential matrix: streaming-heavy,
/// cache-resident, a finite trace that drains mid-run, and a phased
/// kernel that alternates compute-bound and memory-bound regimes (so
/// fast-forward engages and disengages repeatedly within one run).
fn kernels() -> Vec<(&'static str, KernelSpec)> {
    let mut resident = AccessMix::memory_sensitive();
    resident.hot_lines = 4;
    resident.hot_frac = 1.0;
    resident.stream_frac = 0.0;
    resident.shared_frac = 0.0;
    resident.cold_lines = 8;
    let mut streaming = AccessMix::memory_sensitive();
    streaming.stream_frac = 0.6;
    streaming.hot_frac = 0.2;
    vec![
        (
            "streaming",
            KernelSpec::steady("diff-stream", streaming, 7).with_warps(8),
        ),
        (
            "resident",
            KernelSpec::steady("diff-resident", resident, 7).with_warps(8),
        ),
        (
            "finite",
            KernelSpec::steady("diff-finite", AccessMix::memory_sensitive(), 7)
                .with_warps(6)
                .with_trace_len(400),
        ),
        (
            "phased",
            KernelSpec::phased(
                "diff-phased",
                vec![
                    Phase {
                        mix: AccessMix::compute_intensive(),
                        instructions: 300,
                    },
                    Phase {
                        mix: AccessMix::memory_sensitive(),
                        instructions: 300,
                    },
                ],
                7,
            )
            .with_warps(8),
        ),
    ]
}

struct RunOutcome {
    counters: Counters,
    cycle: u64,
    completed: bool,
    steering: Vec<(u64, WarpTuple)>,
    ff_cycles: u64,
}

fn run_with<C: Controller>(
    mode: StepMode,
    spec: &KernelSpec,
    make: impl Fn() -> C,
    budget: u64,
) -> RunOutcome {
    let mut cfg = GpuConfig::scaled(1);
    cfg.track_pc_stats = true; // uniform config so APCM is comparable
    cfg.step_mode = mode;
    if mode == StepMode::ParallelSm {
        cfg.sim_threads = 2;
    }
    let mut gpu = Gpu::new(cfg, spec);
    let mut ctrl = Recording::new(make());
    let res = gpu.run(&mut ctrl, budget);
    RunOutcome {
        counters: res.counters,
        cycle: gpu.cycle(),
        completed: res.completed,
        steering: ctrl.events,
        ff_cycles: gpu.fast_forward_stats().1,
    }
}

fn assert_identical<C: Controller>(policy: &str, make: impl Fn() -> C, budget: u64) {
    for (kname, spec) in kernels() {
        let rf = run_with(StepMode::Reference, &spec, &make, budget);
        assert_eq!(rf.ff_cycles, 0, "reference mode must never skip");
        for mode in [StepMode::PerSm, StepMode::ParallelSm, StepMode::EventDriven] {
            let fast = run_with(mode, &spec, &make, budget);
            assert_eq!(
                fast.counters, rf.counters,
                "{policy}/{kname}/{mode:?}: counters diverged"
            );
            assert_eq!(
                fast.cycle, rf.cycle,
                "{policy}/{kname}/{mode:?}: final cycle"
            );
            assert_eq!(
                fast.completed, rf.completed,
                "{policy}/{kname}/{mode:?}: completion status"
            );
            assert_eq!(
                fast.steering, rf.steering,
                "{policy}/{kname}/{mode:?}: steering trajectory (a skip crossed a wake)"
            );
        }
    }
}

const BUDGET: u64 = 60_000;

#[test]
fn gto_fixed_max_is_identical() {
    assert_identical("GTO", FixedTuple::max, BUDGET);
}

#[test]
fn swl_fixed_diagonal_is_identical() {
    // SWL executes through FixedTuple at an offline-chosen diagonal point.
    assert_identical("SWL", || FixedTuple::new(WarpTuple::new(4, 4, 24)), BUDGET);
}

#[test]
fn static_best_fixed_off_diagonal_is_identical() {
    // Static-Best executes through FixedTuple at an off-diagonal optimum.
    assert_identical(
        "Static-Best",
        || FixedTuple::new(WarpTuple::new(6, 2, 24)),
        BUDGET,
    );
}

#[test]
fn poise_hie_is_identical() {
    assert_identical(
        "Poise",
        || PoiseController::new(const_model(8.0, 2.0), PoiseParams::scaled_down(20)),
        BUDGET,
    );
}

#[test]
fn pcal_swl_is_identical() {
    assert_identical(
        "PCAL-SWL",
        || PcalSwlController::new(WarpTuple::new(4, 4, 24)),
        BUDGET,
    );
}

#[test]
fn random_restart_is_identical() {
    assert_identical(
        "Random-restart",
        || RandomRestartController::new(42, 15_000).with_windows(500, 1_000),
        BUDGET,
    );
}

#[test]
fn apcm_is_identical() {
    assert_identical(
        "APCM",
        || ApcmController::new(30_000).with_monitor_cycles(8_000),
        BUDGET,
    );
}

#[test]
fn fast_forward_engages_on_memory_bound_runs() {
    // The equality tests above would pass vacuously if fast-forward never
    // triggered; pin that both fast modes actually skip a large share of a
    // memory-bound run.
    let (_, spec) = kernels().remove(0);
    for mode in [StepMode::PerSm, StepMode::ParallelSm, StepMode::EventDriven] {
        let fast = run_with(mode, &spec, FixedTuple::max, BUDGET);
        assert!(
            fast.ff_cycles > BUDGET / 4,
            "{mode:?}: expected a large skipped share, got {} of {BUDGET}",
            fast.ff_cycles
        );
    }
}

#[test]
fn per_sm_decoupling_beats_the_global_skip_on_multi_sm_machines() {
    // The regime this mode exists for: multiple desynchronised SMs at high
    // occupancy. The global skip needs *every* scheduler stalled at once;
    // the per-SM loop skips each SM's own stalls regardless.
    let spec = KernelSpec::steady("diff-multi", AccessMix::memory_sensitive(), 11).with_warps(16);
    let run = |mode: StepMode| {
        let mut cfg = GpuConfig::scaled(4);
        cfg.step_mode = mode;
        if mode == StepMode::ParallelSm {
            cfg.sim_threads = 2;
        }
        let mut gpu = Gpu::new(cfg, &spec);
        let mut ctrl = FixedTuple::max();
        let res = gpu.run(&mut ctrl, BUDGET);
        (res.counters, gpu.fast_forward_stats().1)
    };
    let (pc, per_sm_skipped) = run(StepMode::PerSm);
    let (tc, _) = run(StepMode::ParallelSm);
    let (ec, global_skipped) = run(StepMode::EventDriven);
    let (rc, _) = run(StepMode::Reference);
    assert_eq!(pc, rc);
    assert_eq!(tc, rc);
    assert_eq!(ec, rc);
    assert!(
        per_sm_skipped > global_skipped,
        "per-SM skipping ({per_sm_skipped} SM-cycles) must beat the global \
         skip ({global_skipped} cycles) at high occupancy"
    );
}

#[test]
fn reject_storms_are_identical_under_steering_controllers() {
    // Full occupancy (24 warps/scheduler, 48 outstanding loads wanted
    // against 32 MSHRs) drives the L1 into a structural reject storm —
    // the regime the per-SM structural-stall replay exists for. Dynamic
    // controllers steer tuples mid-storm, repeatedly moving the machine
    // in and out of it; every mode must agree bit-for-bit. The budget is
    // modest because the reference loop really steps every storm cycle.
    let spec = KernelSpec::steady("diff-storm", AccessMix::memory_sensitive(), 3).with_warps(24);
    let budget = 25_000;
    let check = |name: &str, make: &dyn Fn() -> Box<dyn Controller>, expect_rejects: bool| {
        let rf = run_with(StepMode::Reference, &spec, make, budget);
        if expect_rejects {
            assert!(
                rf.counters.l1_rejects > 0,
                "{name}: expected a reject storm at full occupancy"
            );
        }
        for mode in [StepMode::PerSm, StepMode::ParallelSm, StepMode::EventDriven] {
            let fast = run_with(mode, &spec, make, budget);
            assert_eq!(fast.counters, rf.counters, "{name}/{mode:?}: counters");
            assert_eq!(fast.steering, rf.steering, "{name}/{mode:?}: steering");
            assert_eq!(fast.cycle, rf.cycle, "{name}/{mode:?}: final cycle");
        }
    };
    check("GTO", &|| Box::new(FixedTuple::max()), true);
    check(
        "Poise",
        &|| {
            Box::new(PoiseController::new(
                const_model(20.0, 4.0),
                PoiseParams::scaled_down(24),
            ))
        },
        // Poise steers away from max occupancy, so the storm may subside.
        false,
    );
    check(
        "APCM",
        &|| Box::new(ApcmController::new(12_000).with_monitor_cycles(4_000)),
        true,
    );
}

#[test]
fn poise_epoch_logs_match_across_modes() {
    // Beyond counters: the HIE's own prediction/search log must agree.
    let spec = KernelSpec::steady("diff-log", AccessMix::memory_sensitive(), 9).with_warps(8);
    let run = |mode: StepMode| {
        let mut cfg = GpuConfig::scaled(1);
        cfg.step_mode = mode;
        if mode == StepMode::ParallelSm {
            cfg.sim_threads = 2;
        }
        let mut gpu = Gpu::new(cfg, &spec);
        let mut ctrl = PoiseController::new(const_model(8.0, 2.0), PoiseParams::scaled_down(20));
        gpu.run(&mut ctrl, 40_000);
        ctrl.log
    };
    let reference = run(StepMode::Reference);
    assert_eq!(run(StepMode::PerSm), reference);
    assert_eq!(run(StepMode::ParallelSm), reference);
    assert_eq!(run(StepMode::EventDriven), reference);
}
