//! Snapshot/restore differential oracle.
//!
//! The contract behind prefix-shared execution: for every shipped control
//! policy and every kernel class, `run(k)` must be **bit-identical** to
//! `run(j); snapshot; restore-into-a-fresh-machine; resume(k − j)` — same
//! `Counters`, same final cycle, same completion status, same steering
//! trajectory, and the same controller-internal state (compared through
//! `Debug`, which covers HIE epoch logs, PCAL's converged point, the
//! random-restart RNG stream position and APCM's bypass set).
//!
//! Mid-run re-entry is covered too: a chain of snapshots, each restored
//! into a fresh machine and a fresh controller rebuilt purely from
//! `Controller::save_state` text, must compose to the same end state.
//! This is what lets any fabric worker pick up another worker's prefix
//! blob at any barrier and continue the suffix.

use std::fmt::Debug;

use gpu_sim::{ControlCtx, Controller, Counters, FixedTuple, Gpu, GpuConfig, StepMode, WarpTuple};
use poise::hie::PoiseController;
use poise::params::PoiseParams;
use poise::policies::{ApcmController, PcalSwlController, RandomRestartController};
use poise_ml::{TrainedModel, N_FEATURES};
use workloads::{AccessMix, KernelSpec, Phase};

/// Wraps a controller, recording every tuple change it steers.
struct Recording<C> {
    inner: C,
    events: Vec<(u64, WarpTuple)>,
}

impl<C> Recording<C> {
    fn new(inner: C) -> Self {
        Recording {
            inner,
            events: Vec::new(),
        }
    }
}

impl<C: Controller> Controller for Recording<C> {
    fn on_kernel_start(&mut self, ctx: &mut ControlCtx) {
        self.inner.on_kernel_start(ctx);
        self.events.push((ctx.cycle, ctx.current_tuple()));
    }

    fn on_cycle(&mut self, ctx: &mut ControlCtx) {
        let before = ctx.current_tuple();
        self.inner.on_cycle(ctx);
        let after = ctx.current_tuple();
        if before != after {
            self.events.push((ctx.cycle, after));
        }
    }

    fn on_kernel_end(&mut self, ctx: &mut ControlCtx) {
        self.inner.on_kernel_end(ctx);
    }

    fn next_wake(&self, now: u64) -> Option<u64> {
        self.inner.next_wake(now)
    }
}

fn const_model(n: f64, p: f64) -> TrainedModel {
    let mut alpha = [0.0; N_FEATURES];
    let mut beta = [0.0; N_FEATURES];
    alpha[N_FEATURES - 1] = n.ln();
    beta[N_FEATURES - 1] = p.ln();
    TrainedModel {
        alpha,
        beta,
        dispersion_n: 0.1,
        dispersion_p: 0.1,
        samples_used: 0,
        dropped_features: Vec::new(),
    }
}

/// The kernel classes of the oracle matrix (mirrors the step-mode
/// differential suite): streaming-heavy, cache-resident, a finite trace
/// that drains mid-run (exercising snapshots of a drained machine), and
/// a phased compute/memory kernel.
fn kernels() -> Vec<(&'static str, KernelSpec)> {
    let mut resident = AccessMix::memory_sensitive();
    resident.hot_lines = 4;
    resident.hot_frac = 1.0;
    resident.stream_frac = 0.0;
    resident.shared_frac = 0.0;
    resident.cold_lines = 8;
    let mut streaming = AccessMix::memory_sensitive();
    streaming.stream_frac = 0.6;
    streaming.hot_frac = 0.2;
    vec![
        (
            "streaming",
            KernelSpec::steady("snap-stream", streaming, 7).with_warps(8),
        ),
        (
            "resident",
            KernelSpec::steady("snap-resident", resident, 7).with_warps(8),
        ),
        (
            "finite",
            KernelSpec::steady("snap-finite", AccessMix::memory_sensitive(), 7)
                .with_warps(6)
                .with_trace_len(400),
        ),
        (
            "phased",
            KernelSpec::phased(
                "snap-phased",
                vec![
                    Phase {
                        mix: AccessMix::compute_intensive(),
                        instructions: 300,
                    },
                    Phase {
                        mix: AccessMix::memory_sensitive(),
                        instructions: 300,
                    },
                ],
                7,
            )
            .with_warps(8),
        ),
    ]
}

/// Step modes under test. The cycle-stepped reference loop joins the
/// matrix when the `reference-step` CI feature is on (it is ~10× slower,
/// and the step-mode differential suite already proves it identical to
/// the fast modes).
fn modes() -> Vec<StepMode> {
    let mut m = vec![StepMode::PerSm, StepMode::ParallelSm];
    if cfg!(feature = "reference-step") {
        m.push(StepMode::Reference);
    }
    m
}

const BUDGET: u64 = 40_000;

fn cfg_for(mode: StepMode) -> GpuConfig {
    let mut cfg = GpuConfig::scaled(1);
    cfg.track_pc_stats = true; // uniform config so APCM is comparable
    cfg.step_mode = mode;
    if mode == StepMode::ParallelSm {
        cfg.sim_threads = 2;
    }
    cfg
}

struct Outcome {
    counters: Counters,
    cycle: u64,
    completed: bool,
    steering: Vec<(u64, WarpTuple)>,
    /// `Debug` rendering of the controller's final state: epoch logs,
    /// tuple traces, RNG position, convergence records — everything.
    fingerprint: String,
}

fn run_cold<C: Controller + Debug>(
    mode: StepMode,
    spec: &KernelSpec,
    make: &dyn Fn() -> C,
) -> Outcome {
    let mut gpu = Gpu::new(cfg_for(mode), spec);
    let mut ctrl = Recording::new(make());
    let res = gpu.run(&mut ctrl, BUDGET);
    Outcome {
        counters: res.counters,
        cycle: gpu.cycle(),
        completed: res.completed,
        steering: ctrl.events,
        fingerprint: format!("{:?}", ctrl.inner),
    }
}

/// Run to each split point, snapshot machine + controller, throw both
/// away, rebuild from the serialized text alone, and resume. With one
/// split this is the fork path; with several it is mid-run re-entry.
fn run_resumed<C: Controller + Debug>(
    mode: StepMode,
    spec: &KernelSpec,
    make: &dyn Fn() -> C,
    splits: &[u64],
) -> Outcome {
    assert!(splits.windows(2).all(|w| w[0] < w[1]));
    assert!(!splits.is_empty() && splits[splits.len() - 1] < BUDGET);
    let mut gpu = Gpu::new(cfg_for(mode), spec);
    let mut ctrl = Recording::new(make());
    let mut steering = Vec::new();
    let mut res = gpu.run(&mut ctrl, splits[0]);
    for (i, &at) in splits.iter().enumerate() {
        let blob = gpu.snapshot();
        let state = ctrl.inner.save_state();
        steering.append(&mut ctrl.events);
        // Fresh machine, fresh controller: nothing survives but text.
        gpu = Gpu::restore(cfg_for(mode), spec, &blob).expect("snapshot must restore");
        let mut fresh = Recording::new(make());
        assert!(
            fresh.inner.load_state(&state),
            "controller state must load back"
        );
        ctrl = fresh;
        let next = splits.get(i + 1).copied().unwrap_or(BUDGET);
        res = gpu.resume(&mut ctrl, next - at);
    }
    steering.append(&mut ctrl.events);
    Outcome {
        counters: res.counters,
        cycle: gpu.cycle(),
        completed: res.completed,
        steering,
        fingerprint: format!("{:?}", ctrl.inner),
    }
}

fn assert_oracle<C: Controller + Debug>(policy: &str, make: impl Fn() -> C) {
    for (kname, spec) in kernels() {
        for mode in modes() {
            let cold = run_cold(mode, &spec, &make);
            for (sname, splits) in [
                ("fork", vec![17_000u64]),
                ("chained", vec![9_000, 23_000, 31_000]),
            ] {
                let warm = run_resumed(mode, &spec, &make, &splits);
                assert_eq!(
                    warm.counters, cold.counters,
                    "{policy}/{kname}/{mode:?}/{sname}: counters diverged"
                );
                assert_eq!(
                    warm.cycle, cold.cycle,
                    "{policy}/{kname}/{mode:?}/{sname}: final cycle"
                );
                assert_eq!(
                    warm.completed, cold.completed,
                    "{policy}/{kname}/{mode:?}/{sname}: completion status"
                );
                assert_eq!(
                    warm.steering, cold.steering,
                    "{policy}/{kname}/{mode:?}/{sname}: steering trajectory"
                );
                assert_eq!(
                    warm.fingerprint, cold.fingerprint,
                    "{policy}/{kname}/{mode:?}/{sname}: controller state"
                );
            }
        }
    }
}

#[test]
fn gto_fixed_max_resumes_identically() {
    assert_oracle("GTO", FixedTuple::max);
}

#[test]
fn swl_fixed_diagonal_resumes_identically() {
    assert_oracle("SWL", || FixedTuple::new(WarpTuple::new(4, 4, 24)));
}

#[test]
fn static_best_fixed_off_diagonal_resumes_identically() {
    assert_oracle("Static-Best", || FixedTuple::new(WarpTuple::new(6, 2, 24)));
}

#[test]
fn poise_hie_resumes_identically() {
    assert_oracle("Poise", || {
        PoiseController::new(const_model(8.0, 2.0), PoiseParams::scaled_down(20))
    });
}

#[test]
fn pcal_swl_resumes_identically() {
    assert_oracle("PCAL-SWL", || {
        PcalSwlController::new(WarpTuple::new(4, 4, 24))
    });
}

#[test]
fn random_restart_resumes_identically() {
    assert_oracle("Random-restart", || {
        RandomRestartController::new(42, 15_000).with_windows(500, 1_000)
    });
}

#[test]
fn apcm_resumes_identically() {
    assert_oracle("APCM", || {
        ApcmController::new(30_000).with_monitor_cycles(8_000)
    });
}

#[test]
fn corrupt_controller_state_is_rejected_without_mutation() {
    // load_state is all-or-nothing: any malformed stream must leave the
    // controller exactly as constructed and return false.
    let make = || PoiseController::new(const_model(8.0, 2.0), PoiseParams::scaled_down(20));
    let spec = kernels().remove(0).1;
    let mut gpu = Gpu::new(cfg_for(StepMode::PerSm), &spec);
    let mut ctrl = make();
    gpu.run(&mut ctrl, 17_000);
    let good = ctrl.save_state();
    let last_token_mangled = {
        let mut toks: Vec<&str> = good.split(' ').collect();
        *toks.last_mut().unwrap() = "wibble";
        toks.join(" ")
    };
    for bad in [
        "",
        "poise-hie-v0 0",
        "garbage",
        &good[..good.len() / 2],           // truncated
        &format!("{good} trailing-token"), // trailing garbage
        &last_token_mangled,
    ] {
        let mut fresh = make();
        let before = format!("{fresh:?}");
        assert!(!fresh.load_state(bad), "must reject {bad:?}");
        assert_eq!(
            format!("{fresh:?}"),
            before,
            "rejected load must not mutate"
        );
    }
    let mut fresh = make();
    assert!(fresh.load_state(&good));
    assert_eq!(format!("{fresh:?}"), format!("{ctrl:?}"));
}
