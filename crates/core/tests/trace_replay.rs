//! The trace backend's correctness oracle: **record → replay must be
//! bit-identical to the live generator**.
//!
//! The recorder dumps a synthetic kernel's per-warp streams to the trace
//! format; the replayer feeds them back through the same
//! `InstructionStream` seam. For any recording that covers the cycle
//! budget, the simulator cannot tell the two backends apart — same
//! counters, same final cycle, same completion status, and the same
//! controller steering trajectory — for every shipped control policy,
//! under both the per-SM decoupled loop and the cycle-stepped reference
//! loop. This is what makes a committed trace a trustworthy regression
//! artefact: replaying it *is* re-running the kernel.
//!
//! One kernel per synthetic class is exercised: streaming, hot-set
//! (intra-warp locality), shared-heavy (inter-warp locality) and
//! compute-bound — the same classes shipped under `traces/`.

use gpu_sim::{ControlCtx, Controller, Counters, FixedTuple, Gpu, GpuConfig, StepMode, WarpTuple};
use poise::hie::PoiseController;
use poise::params::PoiseParams;
use poise::policies::{ApcmController, PcalSwlController, RandomRestartController};
use poise_ml::{TrainedModel, N_FEATURES};
use workloads::{record_kernel, AccessMix, KernelSpec, TraceRef, Workload};

const BUDGET: u64 = 12_000;

/// Wraps a controller, recording every tuple change it steers.
struct Recording<C> {
    inner: C,
    events: Vec<(u64, WarpTuple)>,
}

impl<C: Controller> Controller for Recording<C> {
    fn on_kernel_start(&mut self, ctx: &mut ControlCtx) {
        self.inner.on_kernel_start(ctx);
        self.events.push((ctx.cycle, ctx.current_tuple()));
    }

    fn on_cycle(&mut self, ctx: &mut ControlCtx) {
        let before = ctx.current_tuple();
        self.inner.on_cycle(ctx);
        let after = ctx.current_tuple();
        if before != after {
            self.events.push((ctx.cycle, after));
        }
    }

    fn on_kernel_end(&mut self, ctx: &mut ControlCtx) {
        self.inner.on_kernel_end(ctx);
    }

    fn next_wake(&self, now: u64) -> Option<u64> {
        self.inner.next_wake(now)
    }
}

fn const_model(n: f64, p: f64) -> TrainedModel {
    let mut alpha = [0.0; N_FEATURES];
    let mut beta = [0.0; N_FEATURES];
    alpha[N_FEATURES - 1] = n.ln();
    beta[N_FEATURES - 1] = p.ln();
    TrainedModel {
        alpha,
        beta,
        dispersion_n: 0.1,
        dispersion_p: 0.1,
        samples_used: 0,
        dropped_features: Vec::new(),
    }
}

/// One kernel per synthetic class (the shipped trace classes).
fn kernel_classes() -> Vec<(&'static str, KernelSpec)> {
    let mut streaming = AccessMix::memory_sensitive();
    streaming.stream_frac = 0.6;
    streaming.hot_frac = 0.2;
    let hotset = AccessMix::memory_sensitive();
    let mut shared = AccessMix::memory_sensitive();
    shared.shared_frac = 0.55;
    shared.shared_lines = 72;
    shared.hot_frac = 0.4;
    let compute = AccessMix::compute_intensive();
    vec![
        (
            "streaming",
            KernelSpec::steady("tr-stream", streaming, 17).with_warps(8),
        ),
        (
            "hotset",
            KernelSpec::steady("tr-hotset", hotset, 18).with_warps(8),
        ),
        (
            "shared",
            KernelSpec::steady("tr-shared", shared, 19).with_warps(6),
        ),
        (
            "compute",
            KernelSpec::steady("tr-compute", compute, 20).with_warps(6),
        ),
    ]
}

/// Record `spec` at the 1-SM test geometry, generously past the budget
/// (a warp issues ≤ 1 instruction/cycle and emits ≤ 1 free sync per
/// issued instruction, so 2 × budget bounds its consumption).
fn record(spec: &KernelSpec, cfg: &GpuConfig) -> Workload {
    let data = record_kernel(
        spec,
        &spec.name,
        1,
        cfg.schedulers_per_sm,
        (2 * BUDGET + 8) as usize,
    );
    Workload::from(TraceRef::from_data(data))
}

struct RunOutcome {
    counters: Counters,
    cycle: u64,
    completed: bool,
    steering: Vec<(u64, WarpTuple)>,
}

fn run_with<C: Controller>(
    mode: StepMode,
    workload: &Workload,
    make: impl Fn() -> C,
) -> RunOutcome {
    let mut cfg = GpuConfig::scaled(1);
    cfg.track_pc_stats = true; // uniform config so APCM is comparable
    cfg.step_mode = mode;
    let mut gpu = Gpu::new(cfg, workload);
    let mut ctrl = Recording {
        inner: make(),
        events: Vec::new(),
    };
    let res = gpu.run(&mut ctrl, BUDGET);
    RunOutcome {
        counters: res.counters,
        cycle: gpu.cycle(),
        completed: res.completed,
        steering: ctrl.events,
    }
}

fn assert_replay_identical<C: Controller>(policy: &str, make: impl Fn() -> C) {
    let cfg = GpuConfig::scaled(1);
    for (class, spec) in kernel_classes() {
        let live = Workload::from(spec.clone());
        let replay = record(&spec, &cfg);
        for mode in [StepMode::Reference, StepMode::PerSm, StepMode::EventDriven] {
            let a = run_with(mode, &live, &make);
            let b = run_with(mode, &replay, &make);
            assert_eq!(
                a.counters, b.counters,
                "{policy}/{class}/{mode:?}: replay counters diverged from the live generator"
            );
            assert_eq!(a.cycle, b.cycle, "{policy}/{class}/{mode:?}: final cycle");
            assert_eq!(
                a.completed, b.completed,
                "{policy}/{class}/{mode:?}: completion status"
            );
            assert_eq!(
                a.steering, b.steering,
                "{policy}/{class}/{mode:?}: steering trajectory"
            );
        }
    }
}

#[test]
fn gto_replay_is_identical() {
    assert_replay_identical("GTO", FixedTuple::max);
}

#[test]
fn swl_replay_is_identical() {
    assert_replay_identical("SWL", || FixedTuple::new(WarpTuple::new(4, 4, 24)));
}

#[test]
fn static_best_replay_is_identical() {
    assert_replay_identical("Static-Best", || FixedTuple::new(WarpTuple::new(6, 2, 24)));
}

#[test]
fn poise_replay_is_identical() {
    assert_replay_identical("Poise", || {
        PoiseController::new(const_model(8.0, 2.0), PoiseParams::scaled_down(20))
    });
}

#[test]
fn pcal_swl_replay_is_identical() {
    assert_replay_identical("PCAL-SWL", || {
        PcalSwlController::new(WarpTuple::new(4, 4, 24))
    });
}

#[test]
fn random_restart_replay_is_identical() {
    assert_replay_identical("Random-restart", || {
        RandomRestartController::new(42, 5_000).with_windows(500, 1_000)
    });
}

#[test]
fn apcm_replay_is_identical() {
    assert_replay_identical("APCM", || {
        ApcmController::new(6_000).with_monitor_cycles(2_000)
    });
}

#[test]
fn replay_through_a_file_round_trip_is_identical() {
    // The full pipeline the shipped traces use: record → encode → write →
    // load → replay. Identity must survive the text serialisation.
    let cfg = GpuConfig::scaled(1);
    let (_, spec) = kernel_classes().remove(0);
    let dir = std::env::temp_dir().join(format!("poise-trace-replay-{}", std::process::id()));
    let data = record_kernel(
        &spec,
        &spec.name,
        1,
        cfg.schedulers_per_sm,
        2 * BUDGET as usize,
    );
    let loaded = TraceRef::write(&data, dir.join("s.trace")).unwrap();
    let a = run_with(StepMode::PerSm, &Workload::from(spec), FixedTuple::max);
    let b = run_with(StepMode::PerSm, &Workload::from(loaded), FixedTuple::max);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.steering, b.steering);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_recordings_diverge_detectably() {
    // A sanity check on the oracle itself: a recording that is *too
    // short* for the budget must not silently pass — the replayed warps
    // end early and the counters move.
    let cfg = GpuConfig::scaled(1);
    let (_, spec) = kernel_classes().remove(0);
    let short = Workload::from(TraceRef::from_data(record_kernel(
        &spec,
        &spec.name,
        1,
        cfg.schedulers_per_sm,
        64,
    )));
    let live = run_with(StepMode::PerSm, &Workload::from(spec), FixedTuple::max);
    let replay = run_with(StepMode::PerSm, &short, FixedTuple::max);
    assert_ne!(
        live.counters, replay.counters,
        "a 64-op recording cannot cover a {BUDGET}-cycle run"
    );
    assert!(replay.completed, "the short trace must drain and complete");
}
