//! Full-resolution vs coarse profiling grids (ROADMAP "Bigger grids").
//!
//! `GridSpec::coarse(24)` was a concession to the slower cycle-stepped
//! core: a geometric N-ladder plus a power-of-two p-ladder instead of the
//! full 300-point triangle. With the per-SM decoupled core the full
//! triangle is routinely affordable (the Fig. 2/5 regenerators now use
//! it), and this test pins the property that made the coarse grid
//! acceptable in the first place: both grids locate the same best
//! operating point, up to grid adjacency.

use gpu_sim::GpuConfig;
use poise::profiler::{profile_grid, GridSpec, ProfileWindow};
use workloads::{evaluation_suite, AccessMix, KernelSpec, Workload};

#[test]
fn full_and_coarse_grids_agree_on_the_best_tuple() {
    let cfg = GpuConfig::scaled(1);
    let window = ProfileWindow {
        warmup: 8_000,
        measure: 6_000,
    };
    let ii = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "ii")
        .expect("ii benchmark");
    let kernels = [
        Workload::from(KernelSpec::steady(
            "agree-thrash",
            AccessMix::memory_sensitive(),
            5,
        )),
        ii.kernels[0].clone(),
    ];
    for spec in &kernels {
        let full = profile_grid(spec, &cfg, &GridSpec::full(24), window);
        let coarse = profile_grid(spec, &cfg, &GridSpec::coarse(24), window);
        let (ft, fs) = full.best_performance().expect("full grid profiled");
        let (ct, cs) = coarse.best_performance().expect("coarse grid profiled");
        let dn = ft.n.abs_diff(ct.n);
        let dp = ft.p.abs_diff(ct.p);
        assert!(
            dn <= 1 && dp <= 1,
            "{}: full(24) best {ft} and coarse(24) best {ct} are not adjacent",
            spec.name()
        );
        // The coarse pick must also be competitive in speedup, not merely
        // nearby in the plane.
        assert!(
            cs >= 0.95 * fs,
            "{}: coarse best {ct}@{cs:.3} far below full best {ft}@{fs:.3}",
            spec.name()
        );
    }
}
