//! End-to-end integration tests spanning all four crates: train a model
//! on profiled kernels, deploy it through the hardware inference engine,
//! and check the paper's qualitative claims on a small machine.

use poise_repro::gpu_sim::{FixedTuple, Gpu, GpuConfig, WarpTuple};
use poise_repro::poise::experiment::{self, Scheme, Setup};
use poise_repro::poise::profiler::{profile_grid, run_tuple, GridSpec, ProfileWindow};
use poise_repro::poise::{train, PoiseController, PoiseParams};
use poise_repro::poise_ml::{TrainedModel, N_FEATURES};
use poise_repro::workloads::{AccessMix, Benchmark, KernelSpec, Workload};

fn small_setup() -> Setup {
    let mut s = Setup::for_tests();
    s.cfg = GpuConfig::scaled(2);
    s
}

fn const_model(n: f64, p: f64) -> TrainedModel {
    let mut alpha = [0.0; N_FEATURES];
    let mut beta = [0.0; N_FEATURES];
    alpha[N_FEATURES - 1] = n.ln();
    beta[N_FEATURES - 1] = p.ln();
    TrainedModel {
        alpha,
        beta,
        dispersion_n: 0.1,
        dispersion_p: 0.1,
        samples_used: 0,
        dropped_features: Vec::new(),
    }
}

#[test]
fn trained_model_deploys_on_unseen_kernel() {
    let setup = small_setup();
    // Train on a small diverse population...
    let kernels: Vec<Workload> = (0..10)
        .map(|i| {
            let mut mix = AccessMix::memory_sensitive();
            mix.hot_lines = 6 + 3 * i;
            mix.hot_frac = 0.5 + 0.04 * i as f64;
            mix.shared_frac = 0.05 + 0.03 * i as f64;
            KernelSpec::steady(format!("train{i}"), mix, 1000 + i as u64).into()
        })
        .collect();
    let model = train::train_on_kernels(&kernels, &setup, &[]);
    assert!(model.alpha.iter().all(|w| w.is_finite()));

    // ...and deploy on a kernel the model never saw.
    let mut unseen_mix = AccessMix::memory_sensitive();
    unseen_mix.hot_lines = 20;
    let unseen = KernelSpec::steady("unseen", unseen_mix, 4242);
    let mut gpu = Gpu::new(setup.cfg.clone(), &unseen);
    let mut ctrl = PoiseController::new(model, PoiseParams::scaled_down(10));
    gpu.run(&mut ctrl, 40_000);
    assert!(!ctrl.log.is_empty(), "HIE must produce predictions");
    for l in &ctrl.log {
        assert!(l.searched.p <= l.searched.n);
        assert!(l.searched.n <= 24);
    }
}

#[test]
fn throttling_beats_gto_on_thrashing_kernel() {
    // The core premise of the paper: some reduced tuple outperforms the
    // maximum-warps baseline on a cache-thrashing kernel.
    let setup = small_setup();
    let kernel: Workload = KernelSpec::steady("thrash", AccessMix::memory_sensitive(), 77).into();
    let window = ProfileWindow {
        warmup: 25_000,
        measure: 10_000,
    };
    let grid = profile_grid(&kernel, &setup.cfg, &GridSpec::coarse(24), window);
    let (best, speedup) = grid.best_performance().expect("profiled");
    assert!(
        speedup > 1.1,
        "a reduced tuple must beat GTO on a thrashing kernel, best {best} = {speedup}"
    );
    assert!(
        best.n < 24,
        "the optimum must involve throttling, got {best}"
    );
}

#[test]
fn pollute_bit_improves_polluting_warp_hit_rate() {
    // Section VI-C mechanism check at system level: at (24, 1) the
    // polluting warps see a far better hit rate than the baseline net
    // rate (Fig. 4's hp >> ho).
    let setup = small_setup();
    let kernel: Workload = KernelSpec::steady("fig4", AccessMix::memory_sensitive(), 99).into();
    let window = ProfileWindow {
        warmup: 30_000,
        measure: 10_000,
    };
    let base = run_tuple(&kernel, &setup.cfg, WarpTuple::max(24), window);
    let reduced = run_tuple(&kernel, &setup.cfg, WarpTuple::new(24, 1, 24), window);
    let ho = base.window.l1_hit_rate();
    let hp = reduced.window.polluting_hit_rate();
    assert!(
        hp > ho + 0.15,
        "hp ({hp:.3}) must exceed baseline ho ({ho:.3}) by a wide margin"
    );
}

#[test]
fn every_scheme_produces_work_and_valid_metrics() {
    let setup = small_setup();
    let bench = Benchmark::new(
        "integration",
        vec![KernelSpec::steady("k0", AccessMix::memory_sensitive(), 3)],
    );
    let model = const_model(8.0, 2.0);
    for scheme in [
        Scheme::Gto,
        Scheme::Swl,
        Scheme::PcalSwl,
        Scheme::Poise,
        Scheme::StaticBest,
        Scheme::RandomRestart,
        Scheme::Apcm,
    ] {
        let r = experiment::run_benchmark(&bench, scheme, &model, &setup);
        assert!(r.ipc > 0.0, "{}: no work", scheme.name());
        assert!(r.l1_hit_rate >= 0.0 && r.l1_hit_rate <= 1.0);
        assert!(r.aml >= 0.0);
        assert!(r.energy > 0.0);
    }
}

#[test]
fn compute_intensive_kernel_keeps_max_warps_end_to_end() {
    let setup = small_setup();
    let kernel = KernelSpec::steady("ci", AccessMix::compute_intensive(), 5);
    let mut gpu = Gpu::new(setup.cfg.clone(), &kernel);
    let mut ctrl = PoiseController::new(const_model(4.0, 1.0), PoiseParams::scaled_down(10));
    gpu.run(&mut ctrl, 30_000);
    assert!(ctrl.log.iter().all(|l| l.early_out));
    assert_eq!(
        gpu.sms()[0].schedulers[0].tuple(),
        WarpTuple { n: 24, p: 24 }
    );
}

#[test]
fn simulation_is_deterministic_across_full_stack() {
    let setup = small_setup();
    let kernel = KernelSpec::steady("det", AccessMix::memory_sensitive(), 11);
    let run = || {
        let mut gpu = Gpu::new(setup.cfg.clone(), &kernel);
        let mut ctrl = PoiseController::new(const_model(6.0, 2.0), PoiseParams::scaled_down(10));
        let r = gpu.run(&mut ctrl, 50_000);
        (r.counters, ctrl.log.clone())
    };
    let (c1, l1) = run();
    let (c2, l2) = run();
    assert_eq!(c1, c2);
    assert_eq!(l1, l2);
}

#[test]
fn gto_fixed_tuple_equals_max_tuple() {
    // GTO via FixedTuple::max must equal an explicit (24, 24).
    let setup = small_setup();
    let kernel = KernelSpec::steady("gto", AccessMix::memory_sensitive(), 21);
    let run = |mut ctrl: FixedTuple| {
        let mut gpu = Gpu::new(setup.cfg.clone(), &kernel);
        gpu.run(&mut ctrl, 20_000).counters
    };
    let a = run(FixedTuple::max());
    let b = run(FixedTuple::new(WarpTuple::new(24, 24, 24)));
    assert_eq!(a, b);
}
