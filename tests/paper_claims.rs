//! Integration tests for the paper's structural claims — the mechanisms
//! that must hold for the evaluation's shape to emerge, each checked on
//! a small machine so the suite stays fast.

use poise_repro::gpu_sim::{Gpu, GpuConfig, KernelSource, WarpTuple};
use poise_repro::poise::profiler::{run_tuple, ProfileWindow};
use poise_repro::poise::{PoiseController, PoiseParams};
use poise_repro::poise_ml::{
    scoring, AnalyticalParams, FeatureVector, ReducedParams, SpeedupGrid, TrainedModel, N_FEATURES,
};
use poise_repro::workloads::{
    compute_insensitive_suite, evaluation_suite, fig4_kernels, training_suite, AccessMix,
    KernelSpec, Workload,
};

fn window() -> ProfileWindow {
    ProfileWindow {
        warmup: 25_000,
        measure: 10_000,
    }
}

fn cfg() -> GpuConfig {
    GpuConfig::scaled(2)
}

/// Fig. 1 / Section I: more polluting warps than the cache can hold causes
/// thrashing; restricting pollution restores the polluting warps' hits.
#[test]
fn pollute_knob_controls_thrashing() {
    let kernel: Workload = KernelSpec::steady("k", AccessMix::memory_sensitive(), 1).into();
    let c = cfg();
    let all = run_tuple(&kernel, &c, WarpTuple::new(24, 24, 24), window());
    let one = run_tuple(&kernel, &c, WarpTuple::new(24, 1, 24), window());
    assert!(
        one.window.polluting_hit_rate() > all.window.l1_hit_rate() + 0.2,
        "p = 1 polluting warps must hit far more than the thrashing baseline"
    );
}

/// Section V-A: the intra/inter-warp hit split of the Fig. 4 kernels must
/// reproduce the paper's ordering: ii most intra-dominated, cfd most
/// inter-dominated.
#[test]
fn fig4_locality_split_ordering() {
    let c = cfg();
    let mut shares = Vec::new();
    for k in fig4_kernels() {
        let base = run_tuple(&k.clone().into(), &c, WarpTuple::max(24), window());
        let w = base.window;
        let hits = w.l1_hits.max(1) as f64;
        shares.push((k.name.clone(), w.l1_intra_hits as f64 / hits));
    }
    let get = |n: &str| {
        shares
            .iter()
            .find(|(name, _)| name == n)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert!(get("ii") > 0.8, "ii intra share {}", get("ii"));
    assert!(get("cfd") < 0.2, "cfd intra share {}", get("cfd"));
    assert!(get("ii") > get("bfs"), "ii > bfs");
    assert!(get("bfs") > get("cfd"), "bfs > cfd");
    assert!(get("syr2k") < get("ii"), "syr2k less intra than ii");
}

/// Table IIIa: training and evaluation suites are disjoint and respect
/// the paper's kernel counts (277 train / 346 eval).
#[test]
fn suite_structure_matches_table_iiia() {
    let train = training_suite();
    let eval = evaluation_suite();
    assert_eq!(train.iter().map(|b| b.kernels.len()).sum::<usize>(), 277);
    assert_eq!(eval.iter().map(|b| b.kernels.len()).sum::<usize>(), 346);
    for t in &train {
        assert!(eval.iter().all(|e| e.name != t.name));
    }
}

/// Fig. 16 premise: the compute-insensitive suite triggers the Imax
/// early-out (In > 49) and therefore runs at maximum warps.
#[test]
fn insensitive_suite_exceeds_imax() {
    let c = cfg();
    for bench in compute_insensitive_suite().into_iter().take(2) {
        let base = run_tuple(&bench.kernels[0], &c, WarpTuple::max(24), window());
        assert!(
            base.window.in_avg() > PoiseParams::default().i_max,
            "{}: In = {}",
            bench.name,
            base.window.in_avg()
        );
    }
}

/// Equation 7/8 sanity at system level: a tuple the profiler rates above
/// 1 must also satisfy the analytical speedup criterion when its observed
/// rates are substituted into the model.
#[test]
fn analytical_model_agrees_with_observed_speedup_direction() {
    let kernel: Workload = KernelSpec::steady("k", AccessMix::memory_sensitive(), 9).into();
    let c = cfg();
    let base = run_tuple(&kernel, &c, WarpTuple::max(24), window());
    let tuned = run_tuple(&kernel, &c, WarpTuple::new(8, 2, 24), window());
    let b = base.window;
    let t = tuned.window;
    // Feed observed rates into Equations 1-6.
    let params = ReducedParams {
        base: AnalyticalParams {
            n: 24.0,
            mo: 1.0 - b.l1_hit_rate(),
            lo: b.aml(),
            kmshr: 32.0,
            id: b.in_avg().min(50.0),
            tpipe: 1.0,
        },
        p: 2.0,
        mp: 1.0 - t.polluting_hit_rate(),
        mnp: 1.0 - t.non_polluting_hit_rate(),
        l_prime: t.aml(),
    };
    let observed_speedup = t.ipc() / b.ipc();
    if observed_speedup > 1.05 {
        assert!(
            params.t_stall() <= params.base.t_stall(),
            "model must not predict more stalls for an observed speedup"
        );
    }
}

/// Section V-C: the scoring system never selects a point whose own
/// speedup is the grid minimum (it always prefers good neighbourhoods).
#[test]
fn scoring_avoids_minima() {
    let mut g = SpeedupGrid::new(10);
    for n in 1..=10 {
        for p in 1..=n {
            g.set(n, p, 1.0 + ((n + 2 * p) % 5) as f64 * 0.05);
        }
    }
    g.set(9, 3, 0.4); // deep pit
    let (t, _) = g
        .best_scored(&poise_repro::poise_ml::ScoringWeights::default())
        .unwrap();
    assert_ne!(t, WarpTuple { n: 9, p: 3 });
}

/// Section V-C scaling: a partial-occupancy kernel's targets scale to
/// full capacity for training and back for prediction.
#[test]
fn tuple_scaling_round_trip_partial_occupancy() {
    for avail in [8usize, 12, 16, 24] {
        let t = WarpTuple::new(avail / 2, (avail / 4).max(1), avail);
        let up = scoring::scale_tuple(t, avail, 24);
        let down = scoring::reverse_scale_tuple(up, avail, 24);
        assert!(
            (down.n as i64 - t.n as i64).abs() <= 1 && (down.p as i64 - t.p as i64).abs() <= 1,
            "avail {avail}: {t} -> {up} -> {down}"
        );
    }
}

/// Occupancy-limited kernels must steer tuples within their own warp
/// count, never the hardware maximum.
#[test]
fn partial_occupancy_clamps_hie_tuples() {
    let kernel = KernelSpec::steady("occ", AccessMix::memory_sensitive(), 31).with_warps(12);
    let mut alpha = [0.0; N_FEATURES];
    let mut beta = [0.0; N_FEATURES];
    alpha[N_FEATURES - 1] = (20.0f64).ln(); // model wants N = 20
    beta[N_FEATURES - 1] = (10.0f64).ln();
    let model = TrainedModel {
        alpha,
        beta,
        dispersion_n: 0.1,
        dispersion_p: 0.1,
        samples_used: 0,
        dropped_features: Vec::new(),
    };
    let mut gpu = Gpu::new(cfg(), &kernel);
    let mut ctrl = PoiseController::new(model, PoiseParams::scaled_down(10));
    gpu.run(&mut ctrl, 30_000);
    assert!(!ctrl.log.is_empty());
    for l in &ctrl.log {
        assert!(
            l.searched.n <= 12,
            "tuple {} exceeds the kernel's 12-warp occupancy",
            l.searched
        );
    }
}

/// The feature vector is finite for every suite kernel's counter windows
/// (no NaN/inf can reach the link function).
#[test]
fn features_are_finite_for_all_suite_archetypes() {
    let c = cfg();
    let mut kernels: Vec<Workload> = Vec::new();
    for b in evaluation_suite() {
        kernels.push(b.kernels[0].clone());
    }
    kernels.push(compute_insensitive_suite()[0].kernels[0].clone());
    for k in kernels {
        let base = run_tuple(
            &k,
            &c,
            WarpTuple::max(KernelSource::warps_per_scheduler(&k)),
            window(),
        );
        let refp = run_tuple(&k, &c, WarpTuple::new(1, 1, 24), window());
        let x = FeatureVector::from_samples(
            &poise_repro::gpu_sim::WindowSample::from_counters(&base.window),
            &poise_repro::gpu_sim::WindowSample::from_counters(&refp.window),
        );
        assert!(
            x.as_slice().iter().all(|v| v.is_finite()),
            "{}: {x}",
            k.name()
        );
    }
}
